//! The approximation algorithms (Theorems 4.1 and 6.1).
//!
//! Both existence proofs construct approximations inside a bounded
//! candidate space:
//!
//! * **Graph-based classes** (Theorem 4.1): the candidates are the
//!   homomorphic images of the tableau `(Im(h), h(x̄))` — equivalently, its
//!   **quotients** by partitions of the variables. Every `C`-approximation
//!   is equivalent to a →-minimal in-class quotient.
//! * **Hypergraph-based classes** (Theorem 6.1 / Claim 6.2): classes like
//!   `AC` are *not* closed under subgraphs, and approximations may need
//!   **more atoms** than `Q` (Example 6.6's `Q'₃` adds a covering atom to
//!   the tableau). The candidate space becomes quotients **augmented** with
//!   extra atoms over the quotient's variables (optionally padded with
//!   fresh variables — the Claim 6.2 edge-extension move); the claim bounds
//!   the number of needed extra atoms by `ℓ·n^m`. We search augmentations
//!   by increasing size, keeping inclusion-minimal in-class repairs, with a
//!   configurable cap ([`ApproxOptions::repair_extra_atoms`], default 1 —
//!   enough for every example in the paper; raise it for exhaustiveness on
//!   wilder vocabularies).
//!
//! The exact pipeline is `enumerate candidates → filter by class →
//! deduplicate up to homomorphic equivalence → keep →-minimal elements →
//! minimize (core)`; Corollaries 4.3 and 6.5 bound it by single-exponential
//! time, and Proposition 4.11 shows no polynomial algorithm exists unless
//! P = NP. [`one_approximation`] is the anytime variant: greedy merging
//! with a beam, sound (`Q' ⊆ Q` and `Q' ∈ C` always) but not guaranteed
//! →-minimal.

use crate::classes::{ClassKind, QueryClass};
use cqapx_cq::{query_from_tableau, tableau_of, ConjunctiveQuery};
use cqapx_structures::fxhash::{FxHashMap, FxHashSet};
use cqapx_structures::iso::{isomorphic_pointed, signature_pointed, IsoSignature};
use cqapx_structures::{
    core_of, order, partition::for_each_partition, quotient::quotient_pointed, HomSolver,
    Partition, Pointed, SearchBudget, StructureBuilder,
};
use std::collections::HashSet;
use std::ops::ControlFlow;

/// Tuning knobs for the approximation search.
///
/// `PartialEq`/`Eq`/`Hash` are derived so the whole struct can sit
/// inside [`ApproxCacheKey`]: every field influences the result, and
/// embedding the struct (rather than a hand-picked fingerprint) keeps
/// future fields automatically part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ApproxOptions {
    /// Cap on the number of partitions enumerated (Bell(n) grows fast).
    /// When hit, the result is still sound but flagged incomplete.
    pub max_partitions: u64,
    /// For hypergraph-based classes: maximum number of extra atoms added
    /// to a quotient when repairing it into the class.
    pub repair_extra_atoms: usize,
    /// For hypergraph-based classes: also try repair atoms padded with one
    /// fresh variable (the Claim 6.2 edge-extension shape).
    pub padded_repairs: bool,
    /// Minimize (core) the resulting approximations.
    pub minimize: bool,
}

impl Default for ApproxOptions {
    fn default() -> Self {
        ApproxOptions {
            max_partitions: 2_000_000,
            repair_extra_atoms: 1,
            padded_repairs: false,
            minimize: true,
        }
    }
}

/// The result of an approximation computation.
#[derive(Debug, Clone)]
pub struct ApproxReport {
    /// The approximations, as queries (minimized when requested).
    pub approximations: Vec<ConjunctiveQuery>,
    /// The approximations, as tableaux.
    pub tableaux: Vec<Pointed>,
    /// Number of in-class candidates examined (after structural dedup).
    pub candidates: usize,
    /// Number of partitions enumerated.
    pub partitions: u64,
    /// `false` when a cap was hit; the output is then still sound (each
    /// returned query is in the class and contained in `Q`) but might miss
    /// approximations or return non-minimal ones.
    pub complete: bool,
}

/// A stable, hashable cache key for approximation results: the tableau's
/// isomorphism-invariant signature plus the class name and an options
/// fingerprint.
///
/// Two queries whose tableaux are isomorphic (same query up to variable
/// renaming) produce equal keys, so a cache keyed by `ApproxCacheKey` can
/// share one [`ApproxReport`] between them. Signature equality is
/// necessary but not sufficient for isomorphism, so a cache must confirm
/// candidate hits with `isomorphic_pointed` against a stored
/// representative tableau — see `cqapx-engine`'s approximation cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ApproxCacheKey {
    /// Isomorphism-invariant signature of the query tableau.
    pub signature: IsoSignature,
    /// The class name, e.g. `"TW(1)"` (classes are identified by name).
    pub class: String,
    /// The [`ApproxOptions`] the result was computed under.
    pub options: ApproxOptions,
}

impl ApproxCacheKey {
    /// Builds the key for approximating tableau `t` within `class` under
    /// `opts`.
    pub fn new(t: &Pointed, class: &dyn QueryClass, opts: &ApproxOptions) -> ApproxCacheKey {
        ApproxCacheKey {
            signature: signature_pointed(t),
            class: class.name(),
            options: opts.clone(),
        }
    }
}

/// A per-search memo table of hom-order verdicts, keyed by isomorphism
/// class.
///
/// The candidate space of the approximation search is full of repeats: a
/// quotient and a repaired quotient, or two quotients by conjugate
/// partitions, are frequently isomorphic, and the dedup/minimality
/// filtering used to re-derive the same arrows `→` between them over and
/// over. The memo assigns each tableau an **isomorphism class id** —
/// bucketed by [`signature_pointed`] (a necessary condition), confirmed by
/// [`isomorphic_pointed`] (exact, so signature collisions are harmless) —
/// compiles one [`HomSolver`] per class representative, and caches one
/// hom-existence verdict per ordered class pair. Hom existence is
/// invariant under isomorphism on either side, so a per-class verdict is
/// sound for every member.
#[derive(Default)]
pub struct HomOrderMemo {
    reps: Vec<Pointed>,
    solvers: Vec<HomSolver>,
    by_sig: FxHashMap<IsoSignature, Vec<usize>>,
    verdicts: FxHashMap<(usize, usize), bool>,
}

impl HomOrderMemo {
    /// An empty memo.
    pub fn new() -> Self {
        HomOrderMemo::default()
    }

    /// The isomorphism-class id of a tableau, interning it on first sight.
    pub fn class_of(&mut self, p: &Pointed) -> usize {
        let sig = signature_pointed(p);
        let bucket = self.by_sig.entry(sig).or_default();
        for &c in bucket.iter() {
            // Signature equality already forces equal universe sizes,
            // per-relation tuple counts and distinguished arities, so a
            // pinned injective homomorphism from the stored representative
            // is an isomorphism (the `isomorphic_pointed` argument), and
            // the representative's compiled solver is reused for the
            // confirmation.
            let rep = &self.reps[c];
            if rep.distinguished().len() == p.distinguished().len()
                && self.solvers[c]
                    .run(&p.structure)
                    .pin_tuple(rep.distinguished(), p.distinguished())
                    .injective()
                    .exists()
            {
                return c;
            }
        }
        let c = self.reps.len();
        bucket.push(c);
        self.reps.push(p.clone());
        self.solvers.push(HomSolver::compile(&p.structure));
        c
    }

    /// The stored representative of a class.
    pub fn rep(&self, class: usize) -> &Pointed {
        &self.reps[class]
    }

    /// Number of distinct isomorphism classes interned so far.
    pub fn classes(&self) -> usize {
        self.reps.len()
    }

    /// Number of hom verdicts actually derived (≤ ordered class pairs).
    pub fn derived_verdicts(&self) -> usize {
        self.verdicts.len()
    }

    /// `class(a) → class(b)` in the hom preorder (`a ≤ b`), memoized.
    pub fn hom_le(&mut self, a: usize, b: usize) -> bool {
        if a == b {
            return true; // isomorphic tableaux are hom-equivalent
        }
        if let Some(&v) = self.verdicts.get(&(a, b)) {
            return v;
        }
        let ra = &self.reps[a];
        let rb = &self.reps[b];
        let v = ra.distinguished().len() == rb.distinguished().len()
            && self.solvers[a]
                .run(&rb.structure)
                .pin_tuple(ra.distinguished(), rb.distinguished())
                .exists();
        self.verdicts.insert((a, b), v);
        v
    }

    /// Memoized [`order::hom_exists`] on arbitrary tableaux (both sides
    /// are interned first).
    pub fn hom_between(&mut self, a: &Pointed, b: &Pointed) -> bool {
        let ca = self.class_of(a);
        let cb = self.class_of(b);
        self.hom_le(ca, cb)
    }
}

/// Enumerates the in-class candidate tableaux for a query tableau.
///
/// Distinct partitions frequently induce the *same* quotient; building a
/// `Structure` (and running the class-membership test) per partition used
/// to pay for every duplicate. Each quotient is therefore fingerprinted
/// first — block count plus the per-relation sorted mapped tuples,
/// computed into reusable scratch buffers with no structure built — and
/// only unseen fingerprints get materialized and class-checked.
fn candidates(
    t: &Pointed,
    class: &dyn QueryClass,
    opts: &ApproxOptions,
) -> (Vec<Pointed>, u64, bool) {
    let s = &t.structure;
    let n = s.universe_size();
    let vocab = s.vocabulary().clone();
    // Flatten the source tuples once: per relation, (arity, concatenated
    // tuple elements).
    let rels: Vec<(cqapx_structures::RelId, usize, Vec<u32>)> = vocab
        .rel_ids()
        .map(|rel| {
            let arity = vocab.arity(rel);
            let mut flat = Vec::with_capacity(arity * s.tuples(rel).len());
            for tup in s.tuples(rel) {
                flat.extend_from_slice(tup);
            }
            (rel, arity, flat)
        })
        .collect();

    let mut seen_fp: FxHashSet<Box<[u32]>> = FxHashSet::default();
    // `Structure`'s interior mutability is only its derived index cache,
    // which equality and hashing ignore — the key is logically immutable.
    #[allow(clippy::mutable_key_type)]
    let mut seen_structs: FxHashSet<Pointed> = FxHashSet::default();
    let mut out: Vec<Pointed> = Vec::new();
    let mut count: u64 = 0;
    // Reusable scratch: per-relation sorted/deduplicated mapped tuples,
    // a u64 packing buffer for low arities, a chunk-sort order, a swap
    // buffer for the generic path, and the fingerprint itself.
    let mut mapped_rel: Vec<Vec<u32>> = vec![Vec::new(); rels.len()];
    let mut packed: Vec<u64> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    let mut sorted: Vec<u32> = Vec::new();
    let mut fp: Vec<u32> = Vec::new();

    let complete = for_each_partition(n, |p| {
        count += 1;
        if count > opts.max_partitions {
            return ControlFlow::Break(());
        }
        let labels = p.labels();
        fp.clear();
        fp.push(p.n_blocks() as u32);
        // The mapped distinguished tuple is part of the pointed quotient's
        // identity: equal structures with differently-mapped free
        // variables are different candidates.
        fp.extend(t.distinguished().iter().map(|&x| labels[x as usize]));
        for (ri, (_, arity, flat)) in rels.iter().enumerate() {
            let w = *arity;
            let buf = &mut mapped_rel[ri];
            buf.clear();
            if w == 0 {
                fp.push(0);
                continue;
            }
            if w <= 2 {
                // Pack each mapped tuple into one u64: a plain integer
                // sort + dedup, much cheaper than slice-compare sorting.
                packed.clear();
                if w == 1 {
                    packed.extend(flat.iter().map(|&e| labels[e as usize] as u64));
                } else {
                    for pair in flat.chunks_exact(2) {
                        packed.push(
                            ((labels[pair[0] as usize] as u64) << 32)
                                | labels[pair[1] as usize] as u64,
                        );
                    }
                }
                packed.sort_unstable();
                packed.dedup();
                for &v in &packed {
                    if w == 2 {
                        buf.push((v >> 32) as u32);
                    }
                    buf.push(v as u32);
                }
            } else {
                buf.extend(flat.iter().map(|&e| labels[e as usize]));
                let n_tuples = buf.len() / w;
                order.clear();
                order.extend(0..n_tuples);
                order.sort_unstable_by(|&a, &b| {
                    buf[a * w..(a + 1) * w].cmp(&buf[b * w..(b + 1) * w])
                });
                sorted.clear();
                let mut prev: Option<usize> = None;
                for &i in &order {
                    let tup = &buf[i * w..(i + 1) * w];
                    if prev.is_none_or(|pi| &buf[pi * w..(pi + 1) * w] != tup) {
                        sorted.extend_from_slice(tup);
                        prev = Some(i);
                    }
                }
                std::mem::swap(buf, &mut sorted);
            }
            // Prefix the relation's deduplicated tuple count: relations
            // are emitted in fixed order and each relation's arity is
            // fixed, so the length prefix makes the encoding uniquely
            // parseable — without it, a tuple of one relation could be
            // misread as belonging to the next, making distinct
            // quotients collide on multi-relation vocabularies.
            fp.push((buf.len() / w) as u32);
            fp.extend_from_slice(buf);
        }
        if seen_fp.contains(fp.as_slice()) {
            return ControlFlow::Continue(());
        }
        seen_fp.insert(fp.clone().into_boxed_slice());

        // First sighting of this quotient: class-check it from the raw
        // buffers when the class supports that; materialize a `Pointed`
        // only when it is actually a candidate (or feeds the repair
        // search).
        let n_blocks = p.n_blocks();
        let verdict = class.contains_quotient(
            n_blocks,
            &mut rels
                .iter()
                .zip(mapped_rel.iter())
                .filter(|((_, w, _), _)| *w > 0)
                .flat_map(|((_, w, _), buf)| buf.chunks_exact(*w)),
        );
        let wants_repairs =
            class.kind() == ClassKind::HypergraphClosed && opts.repair_extra_atoms > 0;
        if verdict == Some(false) && !wants_repairs {
            return ControlFlow::Continue(());
        }

        let mut b = StructureBuilder::new(vocab.clone(), n_blocks);
        for ((rel, w, _), buf) in rels.iter().zip(mapped_rel.iter()) {
            if *w == 0 {
                continue;
            }
            for tup in buf.chunks_exact(*w) {
                b.add(*rel, tup);
            }
        }
        let distinguished = t
            .distinguished()
            .iter()
            .map(|&x| labels[x as usize])
            .collect();
        let qt = Pointed::new(b.finish(), distinguished);

        let in_class = verdict.unwrap_or_else(|| class.contains_tableau(&qt));
        if in_class {
            if seen_structs.insert(qt.clone()) {
                out.push(qt);
            }
        } else if wants_repairs {
            for repaired in repairs_public(&qt, class, opts) {
                if seen_structs.insert(repaired.clone()) {
                    out.push(repaired);
                }
            }
        }
        ControlFlow::Continue(())
    });
    (out, count.min(opts.max_partitions), complete)
}

/// Inclusion-minimal augmentations of `qt` with up to
/// `opts.repair_extra_atoms` extra atoms that land in the class (the
/// Claim 6.2 move). Exposed for the `identify` decision procedure.
pub fn repairs_public(qt: &Pointed, class: &dyn QueryClass, opts: &ApproxOptions) -> Vec<Pointed> {
    let s = &qt.structure;
    let vocab = s.vocabulary().clone();
    let u = s.universe_size();
    // Candidate extra atoms: every missing tuple over the quotient's
    // elements; optionally, tuples with exactly one fresh padding element.
    #[derive(Clone)]
    struct Extra {
        rel: cqapx_structures::RelId,
        tuple: Vec<u32>,
        padded: bool,
    }
    let mut extras: Vec<Extra> = Vec::new();
    for rel in vocab.rel_ids() {
        let arity = vocab.arity(rel);
        let mut tuple = vec![0u32; arity];
        loop {
            if !s.contains(rel, &tuple) {
                extras.push(Extra {
                    rel,
                    tuple: tuple.clone(),
                    padded: false,
                });
            }
            // increment base-u counter
            let mut pos = 0;
            loop {
                if pos == arity {
                    break;
                }
                tuple[pos] += 1;
                if (tuple[pos] as usize) < u {
                    break;
                }
                tuple[pos] = 0;
                pos += 1;
            }
            if pos == arity {
                break;
            }
        }
        if opts.padded_repairs && arity >= 2 {
            // One fresh element (marker u) in each position, others over U.
            let mut base = vec![0u32; arity - 1];
            loop {
                for pad_pos in 0..arity {
                    let mut tuple = Vec::with_capacity(arity);
                    let mut bi = 0;
                    for p in 0..arity {
                        if p == pad_pos {
                            tuple.push(u as u32); // fresh marker
                        } else {
                            tuple.push(base[bi]);
                            bi += 1;
                        }
                    }
                    extras.push(Extra {
                        rel,
                        tuple,
                        padded: true,
                    });
                }
                let mut pos = 0;
                loop {
                    if pos == arity - 1 {
                        break;
                    }
                    base[pos] += 1;
                    if (base[pos] as usize) < u {
                        break;
                    }
                    base[pos] = 0;
                    pos += 1;
                }
                if pos == arity - 1 || arity == 1 {
                    break;
                }
            }
        }
    }

    let build = |subset: &[usize]| -> Pointed {
        let n_pads = subset.iter().filter(|&&i| extras[i].padded).count();
        let mut b = StructureBuilder::new(vocab.clone(), u + n_pads);
        for rel in vocab.rel_ids() {
            for t in s.tuples(rel) {
                b.add(rel, t);
            }
        }
        let mut next_pad = u as u32;
        for &i in subset {
            let e = &extras[i];
            if e.padded {
                let tuple: Vec<u32> = e
                    .tuple
                    .iter()
                    .map(|&x| if x == u as u32 { next_pad } else { x })
                    .collect();
                next_pad += 1;
                b.add(e.rel, &tuple);
            } else {
                b.add(e.rel, &e.tuple);
            }
        }
        Pointed::new(b.finish(), qt.distinguished().to_vec())
    };

    // Search by increasing repair size, keeping inclusion-minimal hits.
    let mut hits: Vec<Vec<usize>> = Vec::new();
    let mut out = Vec::new();
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _size in 1..=opts.repair_extra_atoms {
        let mut next = Vec::new();
        for base in &frontier {
            let start = base.last().map_or(0, |&l| l + 1);
            for i in start..extras.len() {
                let mut subset = base.clone();
                subset.push(i);
                // skip supersets of known hits (inclusion-minimality)
                if hits.iter().any(|h| h.iter().all(|x| subset.contains(x))) {
                    continue;
                }
                let cand = build(&subset);
                if class.contains_tableau(&cand) {
                    hits.push(subset);
                    out.push(cand);
                } else {
                    next.push(subset);
                }
            }
        }
        frontier = next;
    }
    out
}

/// Computes all `C`-approximations of a tableau, as tableaux.
///
/// This is Theorem 4.1's (resp. 6.1's) procedure run to completion:
/// candidates, filtered by class, →-minimal elements, cores. The returned
/// tableaux are pairwise non-equivalent.
pub fn all_approximations_tableaux(
    t: &Pointed,
    class: &dyn QueryClass,
    opts: &ApproxOptions,
) -> (Vec<Pointed>, ApproxReportMeta) {
    let (cands, partitions, complete) = candidates(t, class, opts);
    let n_candidates = cands.len();
    // Collapse candidates into isomorphism classes (isomorphic tableaux
    // are hom-equivalent, so this is already part of the dedup) and run
    // the dedup/minimality arrows through the per-search memo: every hom
    // verdict between two classes is derived at most once.
    let mut memo = HomOrderMemo::new();
    let mut class_order: Vec<usize> = Vec::new();
    let mut seen_classes: FxHashSet<usize> = FxHashSet::default();
    for c in &cands {
        let cid = memo.class_of(c);
        if seen_classes.insert(cid) {
            class_order.push(cid);
        }
    }
    // Deduplicate up to homomorphic equivalence (first representative
    // wins), keeping the quadratic minimality pass small.
    let mut kept: Vec<usize> = Vec::new();
    'outer: for &c in &class_order {
        for &k in &kept {
            if memo.hom_le(c, k) && memo.hom_le(k, c) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    // →-minimal elements among the kept classes.
    let minimal: Vec<usize> = kept
        .iter()
        .copied()
        .filter(|&i| {
            !kept
                .iter()
                .any(|&j| j != i && memo.hom_le(j, i) && !memo.hom_le(i, j))
        })
        .collect();
    let mut result: Vec<Pointed> = minimal.into_iter().map(|c| memo.rep(c).clone()).collect();
    if opts.minimize {
        result = result.iter().map(|p| core_of(p).core).collect();
        // Cores of non-equivalent structures are non-isomorphic; dedupe
        // defensively anyway.
        let mut unique: Vec<Pointed> = Vec::new();
        for r in result {
            if !unique.iter().any(|u| isomorphic_pointed(u, &r)) {
                unique.push(r);
            }
        }
        result = unique;
    }
    (
        result,
        ApproxReportMeta {
            candidates: n_candidates,
            partitions,
            complete,
        },
    )
}

/// Bookkeeping from a tableau-level approximation run.
#[derive(Debug, Clone, Copy)]
pub struct ApproxReportMeta {
    /// In-class candidates examined.
    pub candidates: usize,
    /// Partitions enumerated.
    pub partitions: u64,
    /// Whether the enumeration was exhaustive.
    pub complete: bool,
}

/// Computes all `C`-approximations of a query.
///
/// # Examples
///
/// ```
/// use cqapx_core::{all_approximations, ApproxOptions, TwK};
/// use cqapx_cq::parse_cq;
///
/// // The triangle has only the trivial acyclic approximation E(x,x).
/// let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// let rep = all_approximations(&tri, &TwK(1), &ApproxOptions::default());
/// assert!(rep.complete);
/// assert_eq!(rep.approximations.len(), 1);
/// let trivial = parse_cq("Q() :- E(x, x)").unwrap();
/// assert!(cqapx_cq::equivalent(&rep.approximations[0], &trivial));
/// ```
pub fn all_approximations(
    q: &ConjunctiveQuery,
    class: &dyn QueryClass,
    opts: &ApproxOptions,
) -> ApproxReport {
    let t = tableau_of(q);
    let (tableaux, meta) = all_approximations_tableaux(&t, class, opts);
    let approximations = tableaux.iter().map(query_from_tableau).collect();
    ApproxReport {
        approximations,
        tableaux,
        candidates: meta.candidates,
        partitions: meta.partitions,
        complete: meta.complete,
    }
}

/// Greedy anytime approximation: beam search over variable merges.
///
/// Starts from the identity partition and merges pairs of variables until
/// the quotient lands in the class (the coarsest quotient always does —
/// it is `Q^trivial`). The result is **sound** — in the class and
/// contained in `Q` — and among the candidates the beam saw it is
/// →-minimal, but global approximation-hood is only guaranteed by the
/// exhaustive [`all_approximations`] (Proposition 4.11: that cannot be
/// polynomial unless P = NP).
pub fn one_approximation(
    q: &ConjunctiveQuery,
    class: &dyn QueryClass,
    beam_width: usize,
) -> ConjunctiveQuery {
    one_approximation_budgeted(q, class, beam_width, None)
}

/// [`one_approximation`] under a shared [`SearchBudget`]: the anytime
/// variant cooperating with the workspace-wide cancellation mechanism
/// (the same step counter the hom solver and the serving engine charge).
///
/// The beam checks the budget between layers and between merge batches;
/// once it runs dry the search stops expanding and falls back to the
/// best in-class quotient found so far (or the always-in-class trivial
/// quotient), so the result stays **sound** — in the class and contained
/// in `Q` — under any budget, including an already-cancelled one.
pub fn one_approximation_budgeted(
    q: &ConjunctiveQuery,
    class: &dyn QueryClass,
    beam_width: usize,
    budget: Option<&SearchBudget>,
) -> ConjunctiveQuery {
    let t = tableau_of(q);
    let n = t.structure.universe_size();
    if class.contains_tableau(&t) {
        return q.clone();
    }
    let out_of_budget = |b: Option<&SearchBudget>| b.is_some_and(|b| b.is_exhausted());
    let mut beam: Vec<Partition> = vec![Partition::identity(n)];
    let mut found: Vec<Pointed> = Vec::new();
    while found.is_empty() && !beam.is_empty() && !out_of_budget(budget) {
        let mut next: Vec<Partition> = Vec::new();
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        'expand: for p in &beam {
            if out_of_budget(budget) {
                break 'expand;
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    if p.block_of(a) == p.block_of(b) {
                        continue;
                    }
                    let merged = p.merge(a, b);
                    if !seen.insert(merged.labels().to_vec()) {
                        continue;
                    }
                    // Each examined quotient is one cooperative step.
                    if let Some(bu) = budget {
                        if !bu.charge(1) {
                            break 'expand;
                        }
                    }
                    let (qt, _) = quotient_pointed(&t, &merged);
                    if class.contains_tableau(&qt) {
                        found.push(qt);
                    } else if next.len() < beam_width {
                        next.push(merged);
                    }
                }
            }
        }
        beam = next;
    }
    if found.is_empty() {
        // Fall back to the coarsest quotient (the trivial query).
        let (qt, _) = quotient_pointed(&t, &Partition::coarsest(n));
        debug_assert!(class.contains_tableau(&qt), "trivial quotient is in class");
        found.push(qt);
    }
    // Among found candidates of this layer, return a →-minimal one,
    // minimized.
    let min = order::minimal_elements(&found);
    let best = core_of(&found[min[0]]).core;
    query_from_tableau(&best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{Acyclic, HtwK, TwK};
    use cqapx_cq::{contained_in, equivalent, parse_cq};

    fn opts() -> ApproxOptions {
        ApproxOptions::default()
    }

    #[test]
    fn triangle_trivial_approximation() {
        // Theorem 5.1 first case: non-bipartite tableau → only Q^triv.
        let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        for class in [&TwK(1) as &dyn QueryClass, &Acyclic] {
            let rep = all_approximations(&tri, class, &opts());
            assert_eq!(rep.approximations.len(), 1, "{}", class.name());
            let a = &rep.approximations[0];
            assert_eq!(a.atom_count(), 1);
            assert!(contained_in(a, &tri));
            assert!(equivalent(a, &parse_cq("Q() :- E(x, x)").unwrap()));
        }
    }

    #[test]
    fn c4_bipartite_unbalanced_gives_k2() {
        // Theorem 5.1 second case: C4 is bipartite but unbalanced → the
        // only acyclic approximation is K2^<->.
        let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        let rep = all_approximations(&c4, &TwK(1), &opts());
        assert!(rep.complete);
        assert_eq!(rep.approximations.len(), 1);
        let a = &rep.approximations[0];
        let k2 = parse_cq("Q() :- E(x,y), E(y,x)").unwrap();
        assert!(equivalent(a, &k2));
    }

    #[test]
    fn intro_q2_approximated_by_p4() {
        // Introduction / Example 5.7: Q2's unique acyclic approximation is
        // the path of length 4.
        let q2 = parse_cq(
            "Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)",
        )
        .unwrap();
        let rep = all_approximations(&q2, &TwK(1), &opts());
        assert!(rep.complete);
        assert_eq!(rep.approximations.len(), 1);
        let p4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e)").unwrap();
        assert!(equivalent(&rep.approximations[0], &p4));
    }

    #[test]
    fn every_approximation_is_sound() {
        let q = parse_cq("Q(x) :- E(x,y), E(y,z), E(z,x), E(x,w), E(w,x)").unwrap();
        for class in [&TwK(1) as &dyn QueryClass, &TwK(2), &Acyclic] {
            let rep = all_approximations(&q, class, &opts());
            assert!(!rep.approximations.is_empty(), "{}", class.name());
            for a in &rep.approximations {
                assert!(contained_in(a, &q), "{} ⊆ Q for {}", a, class.name());
                assert!(
                    class.contains_tableau(&tableau_of(a)),
                    "{a} in {}",
                    class.name()
                );
            }
        }
    }

    #[test]
    fn tw2_approximation_of_k4() {
        // K4^<-> (treewidth 3): TW(2)-approximations exist (Cor 4.2), and
        // since K4's tableau is not 3-colorable, all have a loop (Thm 5.10).
        let k4 = parse_cq(
            "Q() :- E(a,b), E(b,a), E(a,c), E(c,a), E(a,d), E(d,a), E(b,c), E(c,b), E(b,d), E(d,b), E(c,d), E(d,c)",
        )
        .unwrap();
        let rep = all_approximations(&k4, &TwK(2), &opts());
        assert!(!rep.approximations.is_empty());
        for a in &rep.approximations {
            let t = tableau_of(a);
            let has_loop = a
                .atoms()
                .iter()
                .any(|atom| atom.args.iter().all(|&v| v == atom.args[0]));
            assert!(has_loop, "non-3-colorable ⇒ loop in {a}");
            assert!(TwK(2).contains_tableau(&t));
        }
    }

    #[test]
    fn example_66_three_acyclic_approximations() {
        // Example 6.6: the ternary triangle has exactly 3 non-equivalent
        // acyclic approximations, including one with MORE atoms than Q.
        let q = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();
        let rep = all_approximations(&q, &Acyclic, &opts());
        assert!(rep.complete);
        let expected = [
            parse_cq("Q() :- R(x, y, x)").unwrap(),
            parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x2), R(x2,x6,x1)").unwrap(),
            parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1), R(x1,x3,x5)").unwrap(),
        ];
        assert_eq!(
            rep.approximations.len(),
            3,
            "got: {:#?}",
            rep.approximations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        );
        for e in &expected {
            assert!(
                rep.approximations.iter().any(|a| equivalent(a, e)),
                "missing {e}"
            );
        }
    }

    #[test]
    fn free_variables_change_approximations() {
        // §5.1.2: Q(x,y) :- E(x,y),E(y,z),E(z,x) has the acyclic
        // approximation E(x,y),E(y,x),E(x,x).
        let q = parse_cq("Q(x, y) :- E(x,y), E(y,z), E(z,x)").unwrap();
        let rep = all_approximations(&q, &TwK(1), &opts());
        let expected = parse_cq("Q(x, y) :- E(x,y), E(y,x), E(x,x)").unwrap();
        assert!(
            rep.approximations.iter().any(|a| equivalent(a, &expected)),
            "got {:?}",
            rep.approximations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn one_approximation_is_sound() {
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x), E(z,w), E(w,v), E(v,z)").unwrap();
        for class in [&TwK(1) as &dyn QueryClass, &Acyclic, &HtwK(2)] {
            let a = one_approximation(&q, class, 32);
            assert!(contained_in(&a, &q), "{}", class.name());
            assert!(class.contains_tableau(&tableau_of(&a)));
        }
    }

    #[test]
    fn in_class_query_is_its_own_approximation() {
        let q = parse_cq("Q(x) :- E(x,y), E(y,z)").unwrap();
        let rep = all_approximations(&q, &TwK(1), &opts());
        assert_eq!(rep.approximations.len(), 1);
        assert!(equivalent(&rep.approximations[0], &q));
        let one = one_approximation(&q, &TwK(1), 8);
        assert!(equivalent(&one, &q));
    }

    #[test]
    fn multi_relation_fingerprints_do_not_collide() {
        // Regression: without a length prefix per relation, the quotient
        // fingerprint of a multi-relation vocabulary was ambiguous (a
        // tuple of R could be misread as a tuple of S), silently dropping
        // distinct candidates. Compare the candidate count against a
        // ground-truth enumeration with full materialization.
        use cqapx_structures::Vocabulary;
        let v = Vocabulary::new(vec![("R", 1), ("S", 1)]);
        let r = v.rel("R").unwrap();
        let s = v.rel("S").unwrap();
        let mut b = StructureBuilder::new(v, 4);
        b.add(r, &[0]).add(r, &[1]).add(s, &[2]).add(s, &[3]);
        let t = Pointed::boolean(b.finish());
        #[allow(clippy::mutable_key_type)]
        let mut ground_truth: HashSet<Pointed> = HashSet::new();
        for_each_partition(4, |p| {
            let (qt, _) = quotient_pointed(&t, p);
            if TwK(1).contains_tableau(&qt) {
                ground_truth.insert(qt);
            }
            ControlFlow::Continue(())
        });
        let (_, meta) = all_approximations_tableaux(&t, &TwK(1), &ApproxOptions::default());
        assert_eq!(meta.candidates, ground_truth.len());
    }

    #[test]
    fn incomplete_flag_when_capped() {
        let q = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,a)").unwrap();
        let mut o = opts();
        o.max_partitions = 10;
        let rep = all_approximations(&q, &TwK(1), &o);
        assert!(!rep.complete);
        for a in &rep.approximations {
            assert!(contained_in(a, &q));
        }
    }
}
