//! The trivial queries: bottom elements of the containment order.
//!
//! * `Q^trivial` — one variable `x`, the conjunction of `R(x, …, x)` over
//!   every relation symbol. Its tableau maps into every tableau via the
//!   constant homomorphism, so `Q^trivial ⊆ Q` for every `Q` (with matching
//!   head shape), and it lies in every class considered (Section 4.1).
//! * `Q^triv₂` — the trivial *bipartite* graph query `E(x,y), E(y,x)`
//!   (tableau `K⃗₂`): contained in every Boolean graph CQ with bipartite
//!   tableau (Theorem 5.1).
//! * `Q^triv_{k+1}` — tableau `K⃗_{k+1}`: treewidth `k`, contained in every
//!   Boolean graph CQ with `(k+1)`-colorable tableau (Section 5.2).

use cqapx_cq::{Atom, ConjunctiveQuery, VarId};
use cqapx_graphs::generators::complete_digraph;
use cqapx_structures::{Pointed, Vocabulary};

/// `Q^trivial` for an arbitrary vocabulary, with `arity` head positions
/// (all filled with the single variable `x`).
///
/// # Examples
///
/// ```
/// use cqapx_core::trivial_query;
/// use cqapx_cq::contained_in;
/// use cqapx_structures::Vocabulary;
///
/// let t = trivial_query(&Vocabulary::graphs(), 0);
/// assert_eq!(t.to_string(), "Q() :- E(x, x)");
/// let q = cqapx_cq::parse_cq("Q() :- E(a,b), E(b,c), E(c,a)").unwrap();
/// assert!(contained_in(&t, &q));
/// ```
pub fn trivial_query(vocab: &Vocabulary, arity: usize) -> ConjunctiveQuery {
    let atoms: Vec<Atom> = vocab
        .rel_ids()
        .map(|rel| Atom {
            rel,
            args: vec![0; vocab.arity(rel)],
        })
        .collect();
    assert!(
        !atoms.is_empty(),
        "trivial query needs a nonempty vocabulary"
    );
    ConjunctiveQuery::new(
        vocab.clone(),
        vec!["x".into()],
        vec![0 as VarId; arity],
        atoms,
    )
}

/// The trivial bipartite Boolean graph query `Q^triv₂() :- E(x,y), E(y,x)`.
pub fn trivial_bipartite_query() -> ConjunctiveQuery {
    cqapx_cq::parse_cq("Q() :- E(x, y), E(y, x)").expect("fixed query parses")
}

/// `Q^triv_{k+1}`: the Boolean graph query whose tableau is the complete
/// digraph `K⃗_{k+1}` (treewidth exactly `k` for k ≥ 1).
pub fn trivial_k_query(k: usize) -> ConjunctiveQuery {
    let t = Pointed::boolean(complete_digraph(k + 1).to_structure());
    cqapx_cq::query_from_tableau(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{Acyclic, HtwK, QueryClass, TwK};
    use cqapx_cq::{contained_in, parse_cq, tableau_of};

    #[test]
    fn trivial_in_all_classes() {
        let v = Vocabulary::new(vec![("R", 3), ("E", 2)]);
        let t = trivial_query(&v, 0);
        let tab = tableau_of(&t);
        for class in [&TwK(1) as &dyn QueryClass, &TwK(2), &Acyclic, &HtwK(1)] {
            assert!(class.contains_tableau(&tab), "{}", class.name());
        }
    }

    #[test]
    fn trivial_contained_in_everything() {
        let v = Vocabulary::new(vec![("R", 3)]);
        let t = trivial_query(&v, 0);
        let q = cqapx_cq::parse_cq("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)").unwrap();
        assert!(contained_in(&t, &q));
        // with free variables
        let t1 = trivial_query(&v, 2);
        let q1 = cqapx_cq::parse_cq("Q(x, y) :- R(x,u,y), R(y,v,z)").unwrap();
        assert!(contained_in(&t1, &q1));
    }

    #[test]
    fn trivial_k_query_properties() {
        for k in 1..=3 {
            let q = trivial_k_query(k);
            let t = tableau_of(&q);
            assert!(TwK(k).contains_tableau(&t), "K{} has tw {}", k + 1, k);
            assert!(!TwK(k - 1).contains_tableau(&t));
        }
    }

    #[test]
    fn triv2_contained_in_bipartite_queries() {
        let t2 = trivial_bipartite_query();
        let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        assert!(contained_in(&t2, &c4));
        let c3 = parse_cq("Q() :- E(a,b), E(b,c), E(c,a)").unwrap();
        assert!(!contained_in(&t2, &c3));
    }
}
