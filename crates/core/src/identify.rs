//! The `Treewidth-k Approximation` decision problem (Section 4.3).
//!
//! *Input*: a CQ `Q`, a CQ `Q' ∈ C`. *Question*: is `Q'` a
//! `C`-approximation of `Q`? Theorem 4.12 shows this is **DP-complete**
//! already for `k = 1` over graphs, even when both tableaux are cores. The
//! procedure below is the natural NP ∧ coNP decomposition the paper
//! describes:
//!
//! 1. `Q' ⊆ Q` — one homomorphism test (NP);
//! 2. no witness `Q'' ∈ C` with `Q' ⊂ Q'' ⊆ Q` — the paper observes the
//!    witness can always be chosen among structures not exceeding `|Q|`,
//!    specifically among homomorphic images of `T_Q` (quotients), which is
//!    exactly the candidate space we enumerate (coNP).
//!
//! For hypergraph-based classes the witness space additionally includes
//! the bounded repair augmentations of Claim 6.2 (see
//! [`crate::approx`]); completeness is subject to the configured repair
//! cap.

use crate::approx::ApproxOptions;
use crate::classes::{ClassKind, QueryClass};
use cqapx_cq::{contained_in, tableau_of, ConjunctiveQuery};
use cqapx_structures::{order, partition::for_each_partition, quotient::quotient_pointed};
use std::ops::ControlFlow;

/// Decides whether `q_prime` is a `C`-approximation of `q`.
///
/// Returns `None` when the partition cap was hit before a verdict (the
/// instance is too large for exhaustive search); `Some(true/false)`
/// otherwise.
///
/// # Examples
///
/// ```
/// use cqapx_core::{is_approximation, ApproxOptions, TwK};
/// use cqapx_cq::parse_cq;
///
/// let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// let triv = parse_cq("Q() :- E(x,x)").unwrap();
/// let k2 = parse_cq("Q() :- E(x,y), E(y,x)").unwrap();
/// let opts = ApproxOptions::default();
/// assert_eq!(is_approximation(&tri, &triv, &TwK(1), &opts), Some(true));
/// // K2^<-> is not even contained in the triangle query.
/// assert_eq!(is_approximation(&tri, &k2, &TwK(1), &opts), Some(false));
/// ```
pub fn is_approximation(
    q: &ConjunctiveQuery,
    q_prime: &ConjunctiveQuery,
    class: &dyn QueryClass,
    opts: &ApproxOptions,
) -> Option<bool> {
    let tp = tableau_of(q_prime);
    if !class.contains_tableau(&tp) {
        return Some(false);
    }
    if !contained_in(q_prime, q) {
        return Some(false);
    }
    // Search for a witness Q'' ∈ C with Q' ⊂ Q'' ⊆ Q. In tableau terms:
    // T_{Q''} → T_{Q'} (so Q' ⊆ Q'') without the converse, and T_{Q''} a
    // candidate (quotient / repaired quotient of T_Q, so Q'' ⊆ Q).
    let t = tableau_of(q);
    let n = t.structure.universe_size();
    let mut found_witness = false;
    let mut budget = opts.max_partitions;
    let complete = for_each_partition(n, |p| {
        if budget == 0 {
            return ControlFlow::Break(());
        }
        budget -= 1;
        let (qt, _) = quotient_pointed(&t, p);
        let mut candidates = Vec::new();
        if class.contains_tableau(&qt) {
            candidates.push(qt);
        } else if class.kind() == ClassKind::HypergraphClosed && opts.repair_extra_atoms > 0 {
            candidates.extend(crate::approx::repairs_public(&qt, class, opts));
        }
        for cand in candidates {
            if order::hom_exists(&cand, &tp) && !order::hom_exists(&tp, &cand) {
                found_witness = true;
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    if found_witness {
        return Some(false);
    }
    if !complete {
        return None;
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{Acyclic, TwK};
    use cqapx_cq::parse_cq;

    fn opts() -> ApproxOptions {
        ApproxOptions::default()
    }

    #[test]
    fn trivial_is_approximation_of_triangle() {
        let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let triv = parse_cq("Q() :- E(x,x)").unwrap();
        assert_eq!(is_approximation(&tri, &triv, &TwK(1), &opts()), Some(true));
    }

    #[test]
    fn k2_is_approximation_of_c4_but_not_of_balanced() {
        let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        let k2 = parse_cq("Q() :- E(x,y), E(y,x)").unwrap();
        assert_eq!(is_approximation(&c4, &k2, &TwK(1), &opts()), Some(true));
        // The trivial loop is contained in C4's query but NOT an
        // approximation (K2 is strictly between).
        let triv = parse_cq("Q() :- E(x,x)").unwrap();
        assert_eq!(is_approximation(&c4, &triv, &TwK(1), &opts()), Some(false));
    }

    #[test]
    fn out_of_class_rejected() {
        let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        assert_eq!(is_approximation(&c4, &c4, &TwK(1), &opts()), Some(false));
        assert_eq!(is_approximation(&c4, &c4, &TwK(2), &opts()), Some(true));
    }

    #[test]
    fn non_contained_rejected() {
        let p2 = parse_cq("Q() :- E(x,y), E(y,z)").unwrap();
        let p5 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f)").unwrap();
        // P5-query ⊆ P2-query, but not the other way; is_approximation(Q=P5, Q'=P2)?
        // P2 is acyclic and P2 ⊇ P5 (P2 not ⊆ P5? hom T_{P2} -> T_{P5}
        // exists? T_{P2} is a 2-path which maps into a 5-path: yes, so
        // P5 ⊆ P2... we need Q' ⊆ Q: is P2 ⊆ P5? T_{P5} → T_{P2}: a 5-path
        // maps into a 2-path? no. So not contained: rejected.
        assert_eq!(is_approximation(&p5, &p2, &TwK(1), &opts()), Some(false));
        // P5 itself is acyclic: its own approximation.
        assert_eq!(is_approximation(&p5, &p5, &TwK(1), &opts()), Some(true));
    }

    #[test]
    fn example_66_candidates_identified() {
        let q = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();
        let good = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1), R(x1,x3,x5)").unwrap();
        assert_eq!(is_approximation(&q, &good, &Acyclic, &opts()), Some(true));
        let bad = parse_cq("Q() :- R(x, x, x)").unwrap();
        assert_eq!(is_approximation(&q, &bad, &Acyclic, &opts()), Some(false));
    }
}
