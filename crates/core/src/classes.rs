//! The tractable query classes as first-class membership oracles.
//!
//! A [`QueryClass`] decides membership of a query (given as a tableau) and
//! declares which **closure discipline** it satisfies — the hypothesis the
//! corresponding existence theorem needs:
//!
//! * [`ClassKind::SubgraphClosed`] (Theorem 4.1): graph-based classes
//!   closed under subgraphs, e.g. `TW(k)`. Approximations can be chosen
//!   among homomorphic images (quotients) of the tableau.
//! * [`ClassKind::HypergraphClosed`] (Theorem 6.1 / Lemma 6.4):
//!   hypergraph-based classes closed under induced subhypergraphs and edge
//!   extensions, e.g. `AC` and `HTW(k)`. Approximations are found among
//!   quotients **augmented** with extra atoms (Claim 6.2 keeps the sizes
//!   polynomial).

use cqapx_graphs::{treewidth_at_most, UGraph};
use cqapx_hypergraphs::{gyo, htw, Hypergraph};
use cqapx_structures::{Pointed, Structure};

/// Which existence theorem applies to the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// Graph-based, closed under subgraphs (Theorem 4.1).
    SubgraphClosed,
    /// Hypergraph-based, closed under induced subhypergraphs and edge
    /// extensions (Theorem 6.1).
    HypergraphClosed,
}

/// A class of conjunctive queries with decidable membership.
pub trait QueryClass {
    /// Display name, e.g. `TW(2)`.
    fn name(&self) -> String;
    /// Which closure discipline the class satisfies.
    fn kind(&self) -> ClassKind;
    /// Membership of the query whose tableau is `t`.
    fn contains_tableau(&self, t: &Pointed) -> bool;
    /// Fast-path membership for a candidate given as raw data — universe
    /// size plus the tuples' element slices — so enumeration loops (the
    /// approximation search checks thousands of quotients) can decide
    /// membership without materializing a `Structure` per candidate.
    ///
    /// Must agree with [`QueryClass::contains_tableau`] on the
    /// materialized candidate (the built-in classes only look at element
    /// co-occurrence, which the slices carry in full). The default
    /// returns `None`: no fast path, the caller materializes.
    fn contains_quotient(
        &self,
        _universe: usize,
        _tuples: &mut dyn Iterator<Item = &[u32]>,
    ) -> Option<bool> {
        None
    }

    /// The treewidth bound under which every member of the class can be
    /// evaluated by a decomposition-based (Yannakakis-over-bags) plan,
    /// when one exists. Engines use it to compile a `DecomposedPlan`
    /// for in-class queries that are not acyclic; `None` means the
    /// class gives no width guarantee (the acyclic tier or the naive
    /// join must serve instead).
    fn decomposition_width(&self) -> Option<usize> {
        None
    }
}

/// The Gaifman graph of a structure: elements as nodes, co-occurrence
/// edges per tuple (self-loops not recorded; see the treewidth module of
/// `cqapx-graphs` for why loops are immaterial).
pub fn structure_graph(s: &Structure) -> UGraph {
    let mut g = UGraph::new(s.universe_size());
    for rel in s.vocabulary().rel_ids() {
        for t in s.tuples(rel) {
            for (i, &x) in t.iter().enumerate() {
                for &y in t.iter().skip(i + 1) {
                    if x != y {
                        g.add_edge(x, y);
                    }
                }
            }
        }
    }
    g
}

/// The hypergraph of a structure: one hyperedge per tuple's element set.
pub fn structure_hypergraph(s: &Structure) -> Hypergraph {
    let mut h = Hypergraph::new(s.universe_size());
    for rel in s.vocabulary().rel_ids() {
        for t in s.tuples(rel) {
            let vars: Vec<u32> = t.to_vec();
            h.add_edge(&vars);
        }
    }
    h
}

/// `TW(k)`: queries whose graph has treewidth at most `k` (graph-based).
///
/// # Examples
///
/// ```
/// use cqapx_core::classes::{QueryClass, TwK};
/// use cqapx_cq::{parse_cq, tableau_of};
///
/// let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// assert!(!TwK(1).contains_tableau(&tableau_of(&tri)));
/// assert!(TwK(2).contains_tableau(&tableau_of(&tri)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwK(pub usize);

impl TwK {
    fn graph_in_class(&self, g: &UGraph) -> bool {
        if self.0 == 1 {
            // Treewidth ≤ 1 is exactly forest-ness (loops immaterial):
            // a union-find-cheap test for the hottest class.
            g.is_forest()
        } else {
            treewidth_at_most(g, self.0).is_some()
        }
    }
}

impl QueryClass for TwK {
    fn name(&self) -> String {
        format!("TW({})", self.0)
    }
    fn kind(&self) -> ClassKind {
        ClassKind::SubgraphClosed
    }
    fn contains_tableau(&self, t: &Pointed) -> bool {
        self.graph_in_class(&structure_graph(&t.structure))
    }
    fn contains_quotient(
        &self,
        universe: usize,
        tuples: &mut dyn Iterator<Item = &[u32]>,
    ) -> Option<bool> {
        let mut g = UGraph::new(universe);
        for t in tuples {
            for (i, &x) in t.iter().enumerate() {
                for &y in t.iter().skip(i + 1) {
                    if x != y {
                        g.add_edge(x, y);
                    }
                }
            }
        }
        Some(self.graph_in_class(&g))
    }
    fn decomposition_width(&self) -> Option<usize> {
        Some(self.0)
    }
}

/// `AC`: queries with an α-acyclic hypergraph (hypergraph-based;
/// `AC = HTW(1)`, and `AC = TW(1)` over graph vocabularies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Acyclic;

fn hypergraph_from_tuples(universe: usize, tuples: &mut dyn Iterator<Item = &[u32]>) -> Hypergraph {
    let mut h = Hypergraph::new(universe);
    for t in tuples {
        h.add_edge(t);
    }
    h
}

impl QueryClass for Acyclic {
    fn name(&self) -> String {
        "AC".into()
    }
    fn kind(&self) -> ClassKind {
        ClassKind::HypergraphClosed
    }
    fn contains_tableau(&self, t: &Pointed) -> bool {
        gyo::is_acyclic(&structure_hypergraph(&t.structure))
    }
    fn contains_quotient(
        &self,
        universe: usize,
        tuples: &mut dyn Iterator<Item = &[u32]>,
    ) -> Option<bool> {
        Some(gyo::is_acyclic(&hypergraph_from_tuples(universe, tuples)))
    }
}

/// `HTW(k)`: queries of hypertree width at most `k` (hypergraph-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtwK(pub usize);

impl QueryClass for HtwK {
    fn name(&self) -> String {
        format!("HTW({})", self.0)
    }
    fn kind(&self) -> ClassKind {
        ClassKind::HypergraphClosed
    }
    fn contains_tableau(&self, t: &Pointed) -> bool {
        htw::htw_at_most(&structure_hypergraph(&t.structure), self.0).is_some()
    }
    fn contains_quotient(
        &self,
        universe: usize,
        tuples: &mut dyn Iterator<Item = &[u32]>,
    ) -> Option<bool> {
        Some(htw::htw_at_most(&hypergraph_from_tuples(universe, tuples), self.0).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_cq::{parse_cq, tableau_of};

    #[test]
    fn graph_class_membership() {
        let path = parse_cq("Q() :- E(x,y), E(y,z)").unwrap();
        assert!(TwK(1).contains_tableau(&tableau_of(&path)));
        assert!(Acyclic.contains_tableau(&tableau_of(&path)));
        let c4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        assert!(!TwK(1).contains_tableau(&tableau_of(&c4)));
        assert!(TwK(2).contains_tableau(&tableau_of(&c4)));
        assert!(!Acyclic.contains_tableau(&tableau_of(&c4)));
        assert!(HtwK(2).contains_tableau(&tableau_of(&c4)));
    }

    #[test]
    fn loop_queries_acyclic() {
        let lp = parse_cq("Q() :- E(x, x)").unwrap();
        assert!(TwK(1).contains_tableau(&tableau_of(&lp)));
        assert!(Acyclic.contains_tableau(&tableau_of(&lp)));
        // K2 with a loop: still acyclic / TW(1).
        let q = parse_cq("Q(x,y) :- E(x,y), E(y,x), E(x,x)").unwrap();
        assert!(TwK(1).contains_tableau(&tableau_of(&q)));
        assert!(Acyclic.contains_tableau(&tableau_of(&q)));
    }

    #[test]
    fn ac_and_twk_diverge_on_wide_atoms() {
        // One 5-ary atom: acyclic but treewidth 4.
        let q = parse_cq("Q() :- R(a,b,c,d,e)").unwrap();
        let t = tableau_of(&q);
        assert!(Acyclic.contains_tableau(&t));
        assert!(!TwK(3).contains_tableau(&t));
        assert!(TwK(4).contains_tableau(&t));
    }

    #[test]
    fn names() {
        assert_eq!(TwK(2).name(), "TW(2)");
        assert_eq!(Acyclic.name(), "AC");
        assert_eq!(HtwK(3).name(), "HTW(3)");
    }
}
