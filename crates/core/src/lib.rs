//! **Efficient approximations of conjunctive queries** — the algorithms of
//! Barceló, Libkin & Romero (PODS 2012).
//!
//! Given a conjunctive query `Q` that is expensive to evaluate (combined
//! complexity `|D|^O(|Q|)`), a **`C`-approximation** is a query `Q' ∈ C`
//! with `Q' ⊆ Q` such that no `Q'' ∈ C` satisfies `Q' ⊂ Q'' ⊆ Q`
//! (Definition 3.1): the best guaranteed-correct under-approximation of `Q`
//! within a tractable class `C`. This crate computes them:
//!
//! * [`classes`] — the tractable classes as first-class values:
//!   [`classes::TwK`] (`TW(k)`, graph-based), [`classes::Acyclic`] (`AC`,
//!   hypergraph-based), [`classes::HtwK`] (`HTW(k)`, hypergraph-based);
//! * [`approx`] — the approximation algorithms. Graph-based classes follow
//!   Theorem 4.1 (approximations live among the **quotients** of the
//!   tableau; enumerate, filter by class, keep the →-minimal ones);
//!   hypergraph-based classes follow Theorem 6.1 / Claim 6.2 (quotients
//!   plus bounded **repair augmentations**, taking ⊆-maximal candidates);
//! * [`trivial`] — the always-present bottom elements `Q^triv`,
//!   `Q^triv₂`, `Q^triv_{k+1}`;
//! * [`trichotomy`] — the structure theorems for queries over graphs
//!   (Theorems 5.1, 5.8, 5.10; Corollaries 5.3, 5.11);
//! * [`strong`] — strong treewidth approximations for higher-arity
//!   vocabularies (§5.3, Propositions 5.13–5.15);
//! * [`identify`] — the `Treewidth-k Approximation` decision problem
//!   (DP-complete, Theorem 4.12).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod classes;
pub mod identify;
pub mod over;
pub mod strong;
pub mod trichotomy;
pub mod trivial;

pub use approx::{
    all_approximations, all_approximations_tableaux, one_approximation, one_approximation_budgeted,
    ApproxCacheKey, ApproxOptions, ApproxReport, HomOrderMemo,
};
pub use classes::{Acyclic, HtwK, QueryClass, TwK};
pub use identify::is_approximation;
pub use trichotomy::{classify_boolean_graph_query, BooleanTrichotomy};
pub use trivial::{trivial_bipartite_query, trivial_k_query, trivial_query};
