//! Overapproximations — the paper's "future work" direction
//! (Section 7), implemented in its sound form.
//!
//! An overapproximation of `Q` within a class `C` is a `Q⁺ ∈ C` with
//! `Q ⊆ Q⁺`: it returns **all** correct answers (possibly with false
//! positives) — the dual of the paper's maximally-contained
//! approximations. The paper leaves the existence theory open ("even the
//! most basic problems … seem challenging"); what *is* straightforward,
//! and useful in practice, is a sound, locally-maximal construction:
//!
//! * dropping atoms from `Q` always yields a containing query
//!   (`T_{Q'} ⊆ T_Q` gives the identity homomorphism `T_{Q'} → T_Q`,
//!   i.e. `Q ⊆ Q'`), and any safe subset of atoms lands in `C`
//!   eventually (a single atom is always acyclic and of minimal width);
//! * among atom subsets, we take an inclusion-**maximal** one in `C`
//!   (greedy re-adding), so no dropped atom can be restored without
//!   leaving the class.
//!
//! Combined with the paper's under-approximations this yields the
//! *sandwich* `Q⁻ ⊆ Q ⊆ Q⁺`: evaluate both tractably; answers of `Q⁻`
//! are **certain**, answers of `Q⁺` are **candidates** (and the
//! difference bounds the approximation error on the given database).

use crate::classes::QueryClass;
use cqapx_cq::{tableau_of, Atom, ConjunctiveQuery};
use cqapx_structures::Element;

/// Builds the subquery with the given atoms, restricted to variables that
/// still occur (free variables must survive — atoms covering them are
/// protected by the caller).
fn subquery(q: &ConjunctiveQuery, keep: &[bool]) -> Option<ConjunctiveQuery> {
    let atoms: Vec<Atom> = q
        .atoms()
        .iter()
        .zip(keep)
        .filter(|&(_, &k)| k)
        .map(|(a, _)| a.clone())
        .collect();
    if atoms.is_empty() {
        return None;
    }
    // Variables still used.
    let mut used = vec![false; q.var_count()];
    for a in &atoms {
        for &v in &a.args {
            used[v as usize] = true;
        }
    }
    // Safety: every free variable must still occur.
    if q.free_vars().iter().any(|&v| !used[v as usize]) {
        return None;
    }
    // Rename densely.
    let mut remap = vec![0 as Element; q.var_count()];
    let mut names = Vec::new();
    let mut next = 0;
    for v in 0..q.var_count() {
        if used[v] {
            remap[v] = next;
            names.push(q.var_name(v as u32).to_string());
            next += 1;
        }
    }
    let atoms = atoms
        .into_iter()
        .map(|a| Atom {
            rel: a.rel,
            args: a.args.iter().map(|&v| remap[v as usize]).collect(),
        })
        .collect();
    let free = q.free_vars().iter().map(|&v| remap[v as usize]).collect();
    Some(ConjunctiveQuery::new(
        q.vocabulary().clone(),
        names,
        free,
        atoms,
    ))
}

/// A sound `C`-overapproximation of `Q`: a query `Q⁺ ∈ C` with
/// `Q ⊆ Q⁺`, obtained as an inclusion-maximal subset of `Q`'s atoms
/// whose query lies in `C` (no dropped atom can be re-added).
///
/// Returns `None` only when no safe atom subset lies in `C` (cannot
/// happen for `AC`/`TW(k)`/`HTW(k)` with `k ≥ 1` as long as some single
/// atom covers all free variables; for queries with free variables spread
/// over several atoms a minimal connected subset is tried first).
///
/// # Examples
///
/// ```
/// use cqapx_core::{over, Acyclic};
/// use cqapx_cq::{contained_in, parse_cq};
///
/// let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
/// let q_plus = over::sound_overapproximation(&tri, &Acyclic).unwrap();
/// assert!(contained_in(&tri, &q_plus));     // all answers kept
/// assert_eq!(q_plus.atom_count(), 2);       // one edge dropped
/// ```
pub fn sound_overapproximation(
    q: &ConjunctiveQuery,
    class: &dyn QueryClass,
) -> Option<ConjunctiveQuery> {
    let m = q.atom_count();
    let in_class = |keep: &[bool]| -> Option<ConjunctiveQuery> {
        let sub = subquery(q, keep)?;
        class.contains_tableau(&tableau_of(&sub)).then_some(sub)
    };

    // Start from everything; greedily drop atoms until in class.
    let mut keep = vec![true; m];
    if in_class(&keep).is_none() {
        // Drop the atom whose removal makes the most progress (here:
        // first removable one per pass; queries are small).
        'outer: loop {
            for i in 0..m {
                if !keep[i] {
                    continue;
                }
                keep[i] = false;
                if subquery(q, &keep).is_some() {
                    if in_class(&keep).is_some() {
                        break 'outer;
                    }
                    // keep the drop and continue shrinking
                    continue 'outer;
                }
                keep[i] = true; // unsafe drop (free variable lost)
            }
            // Nothing droppable left and still not in class.
            return None;
        }
    }
    // Local maximality: try to restore dropped atoms.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..m {
            if keep[i] {
                continue;
            }
            keep[i] = true;
            if in_class(&keep).is_some() {
                changed = true;
            } else {
                keep[i] = false;
            }
        }
    }
    in_class(&keep)
}

/// The sandwich `Q⁻ ⊆ Q ⊆ Q⁺`: an under-approximation from the paper's
/// exact procedure (first one found) together with a sound
/// overapproximation, both in `C`.
pub fn sandwich(
    q: &ConjunctiveQuery,
    class: &dyn QueryClass,
    opts: &crate::approx::ApproxOptions,
) -> (ConjunctiveQuery, Option<ConjunctiveQuery>) {
    let rep = crate::approx::all_approximations(q, class, opts);
    let under = rep
        .approximations
        .into_iter()
        .next()
        .expect("under-approximations always exist");
    let over = sound_overapproximation(q, class);
    (under, over)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{Acyclic, HtwK, TwK};
    use cqapx_cq::{contained_in, eval, parse_cq};
    use cqapx_structures::Structure;

    #[test]
    fn triangle_sandwich() {
        let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let (under, over) = sandwich(&tri, &Acyclic, &crate::approx::ApproxOptions::default());
        let over = over.expect("overapproximation exists");
        assert!(contained_in(&under, &tri));
        assert!(contained_in(&tri, &over));
        // On any database: under ⊆ exact ⊆ over.
        let d = Structure::digraph(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let e_under = eval::naive::eval_boolean_naive(&under, &d);
        let e_exact = eval::naive::eval_boolean_naive(&tri, &d);
        let e_over = eval::naive::eval_boolean_naive(&over, &d);
        assert!(!e_under || e_exact);
        assert!(!e_exact || e_over);
    }

    #[test]
    fn overapproximation_is_maximal_subset() {
        let tri = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let over = sound_overapproximation(&tri, &TwK(1)).unwrap();
        // dropping one edge of a triangle leaves a 2-path: acyclic, and
        // restoring any edge closes the cycle — maximal.
        assert_eq!(over.atom_count(), 2);
    }

    #[test]
    fn in_class_query_is_its_own_overapproximation() {
        let p = parse_cq("Q(x) :- E(x,y), E(y,z)").unwrap();
        let over = sound_overapproximation(&p, &TwK(1)).unwrap();
        assert_eq!(over.atom_count(), p.atom_count());
        assert!(cqapx_cq::equivalent(&over, &p));
    }

    #[test]
    fn free_variables_protected() {
        // Free variables x1..x3 occur only in specific atoms; the greedy
        // drop must not orphan them.
        let q = parse_cq("Q(x1, x2, x3) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)").unwrap();
        let over = sound_overapproximation(&q, &TwK(1)).unwrap();
        assert!(contained_in(&q, &over));
        assert_eq!(over.arity(), 3);
    }

    #[test]
    fn higher_arity_over() {
        let q = parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap();
        let over = sound_overapproximation(&q, &Acyclic).unwrap();
        assert!(contained_in(&q, &over));
        assert_eq!(over.atom_count(), 2, "dropping one ternary atom suffices");
        // HTW(2) holds already: nothing dropped.
        let over2 = sound_overapproximation(&q, &HtwK(2)).unwrap();
        assert_eq!(over2.atom_count(), 3);
    }

    #[test]
    fn answers_sandwich_on_data() {
        let q = parse_cq("Q(a) :- E(a,b), E(b,c), E(c,a)").unwrap();
        let (under, over) = sandwich(&q, &TwK(1), &crate::approx::ApproxOptions::default());
        let over = over.unwrap();
        let d = Structure::digraph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let a_under = eval::naive::eval_naive(&under, &d);
        let a_exact = eval::naive::eval_naive(&q, &d);
        let a_over = eval::naive::eval_naive(&over, &d);
        assert!(a_under.is_subset(&a_exact), "certain answers");
        assert!(a_exact.is_subset(&a_over), "candidate answers");
    }
}
