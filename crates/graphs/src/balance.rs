//! Balanced digraphs, levels and height.
//!
//! A digraph is **balanced** when every oriented cycle has net length 0
//! (equivalently, `G → P⃗_k` for some directed path `P⃗_k` — Hell &
//! Nešetřil). For a balanced digraph, the **level** of a node `v` is the
//! maximum net length of an oriented path terminating at `v`, and the
//! **height** `hg(G)` is the maximum level. The paper's Lemma 4.5 — any
//! homomorphism between balanced digraphs of equal height preserves levels
//! — drives the lower-bound constructions (Prop 4.4 and Theorem 4.12); the
//! level computations here let the test-suite machine-check those gadgets.

use crate::digraph::Digraph;
use cqapx_structures::Element;

/// Balance information for a digraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BalanceInfo {
    /// Level of every node (meaningful only when `balanced`).
    pub levels: Vec<i64>,
    /// Height: maximum level.
    pub height: i64,
    /// Whether the digraph is balanced.
    pub balanced: bool,
}

/// Computes balance, levels and height.
///
/// Within each weakly connected component, levels are fixed by a potential
/// function (`pot(v) = pot(u) + 1` along every edge `(u, v)`); the digraph
/// is balanced iff the potential is consistent. The level of a node is its
/// potential normalized so that each component's minimum is 0, which equals
/// the maximum net length of an oriented path ending there.
///
/// # Examples
///
/// ```
/// use cqapx_graphs::{balance, Digraph, OrientedPath};
///
/// let p = OrientedPath::parse("0101").to_digraph();
/// let info = balance::levels(&p);
/// assert!(info.balanced);
/// assert_eq!(info.height, 1);
///
/// let c3 = Digraph::cycle(3);
/// assert!(!balance::levels(&c3).balanced);
/// ```
pub fn levels(g: &Digraph) -> BalanceInfo {
    let n = g.n();
    let mut pot = vec![i64::MIN; n];
    let mut balanced = true;

    // Build symmetric adjacency with direction info.
    let mut adj: Vec<Vec<(Element, i64)>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        if u == v {
            balanced = false; // a loop is an unbalanced oriented cycle
            continue;
        }
        adj[u as usize].push((v, 1));
        adj[v as usize].push((u, -1));
    }

    let mut comp_nodes: Vec<Element> = Vec::new();
    for start in 0..n {
        if pot[start] != i64::MIN {
            continue;
        }
        comp_nodes.clear();
        pot[start] = 0;
        comp_nodes.push(start as Element);
        let mut stack = vec![start as Element];
        while let Some(u) = stack.pop() {
            let pu = pot[u as usize];
            for &(v, d) in &adj[u as usize] {
                let expect = pu + d;
                if pot[v as usize] == i64::MIN {
                    pot[v as usize] = expect;
                    comp_nodes.push(v);
                    stack.push(v);
                } else if pot[v as usize] != expect {
                    balanced = false;
                }
            }
        }
        // Normalize component minimum to 0.
        let min = comp_nodes
            .iter()
            .map(|&v| pot[v as usize])
            .min()
            .unwrap_or(0);
        for &v in &comp_nodes {
            pot[v as usize] -= min;
        }
    }

    let height = pot.iter().copied().max().unwrap_or(0);
    BalanceInfo {
        levels: pot,
        height,
        balanced,
    }
}

/// `true` when every oriented cycle of `g` has net length 0.
pub fn is_balanced(g: &Digraph) -> bool {
    levels(g).balanced
}

/// The height `hg(G)` of a balanced digraph.
///
/// # Panics
///
/// Panics when `g` is not balanced (height is undefined).
pub fn height(g: &Digraph) -> i64 {
    let info = levels(g);
    assert!(
        info.balanced,
        "height is only defined for balanced digraphs"
    );
    info.height
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oriented::OrientedPath;

    #[test]
    fn directed_path_levels() {
        let p = Digraph::directed_path(4);
        let info = levels(&p);
        assert!(info.balanced);
        assert_eq!(info.levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(info.height, 4);
    }

    #[test]
    fn directed_cycle_unbalanced() {
        assert!(!is_balanced(&Digraph::cycle(3)));
        assert!(!is_balanced(&Digraph::cycle(4)));
    }

    #[test]
    fn alternating_cycle_balanced() {
        // 0 -> 1 <- 2 -> 3 <- 0: net length 0, balanced.
        let g = Digraph::from_edges(4, &[(0, 1), (2, 1), (2, 3), (0, 3)]);
        let info = levels(&g);
        assert!(info.balanced);
        assert_eq!(info.height, 1);
    }

    #[test]
    fn loops_are_unbalanced() {
        let g = Digraph::from_edges(1, &[(0, 0)]);
        assert!(!is_balanced(&g));
    }

    #[test]
    fn oriented_path_height_is_max_prefix_net() {
        // 001000: net lengths of prefixes: 1,2,1,2,3,4 -> height 4.
        let g = OrientedPath::parse("001000").to_digraph();
        let info = levels(&g);
        assert!(info.balanced);
        assert_eq!(info.height, 4);
        // paper's P_i = 0^{i+1} 1 0^{11-i} all have net length 11 and
        // height 12 (max prefix potential: i+1 rises, one dip, rise to 11;
        // max is 11 at the end? prefix max = max(i+1, 11)).
        for i in 1..=9usize {
            let s = format!("{}1{}", "0".repeat(i + 1), "0".repeat(11 - i));
            let p = OrientedPath::parse(&s);
            assert_eq!(p.net_length(), 11);
            let info = levels(&p.to_digraph());
            assert!(info.balanced);
            assert_eq!(info.height, 11, "P_{i} has height 11");
        }
    }

    #[test]
    fn per_component_normalization() {
        // Two components with different spans.
        let mut g = Digraph::directed_path(2); // levels 0,1,2
        let other = Digraph::directed_path(5); // levels 0..=5
        g = g.disjoint_union(&other);
        let info = levels(&g);
        assert!(info.balanced);
        assert_eq!(info.levels[0], 0);
        assert_eq!(info.levels[2], 2);
        assert_eq!(info.levels[3], 0);
        assert_eq!(info.levels[8], 5);
        assert_eq!(info.height, 5);
    }

    #[test]
    #[should_panic(expected = "balanced")]
    fn height_panics_on_unbalanced() {
        let _ = height(&Digraph::cycle(3));
    }
}
