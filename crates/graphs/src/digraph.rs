//! Directed graphs with conversions to/from relational structures.

use cqapx_structures::{Element, Structure, StructureBuilder, Vocabulary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A directed graph on nodes `0..n` (loops allowed, no parallel edges).
///
/// `Digraph` is a convenience view over relational structures of the
/// graphs vocabulary `{E/2}`: gadget construction and graph algorithms use
/// `Digraph`; the homomorphism machinery uses [`Structure`]. The two
/// convert losslessly.
///
/// # Examples
///
/// ```
/// use cqapx_graphs::Digraph;
///
/// let c3 = Digraph::cycle(3);
/// assert_eq!(c3.n(), 3);
/// assert!(c3.has_edge(2, 0));
/// let s = c3.to_structure();
/// assert_eq!(Digraph::from_structure(&s), c3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digraph {
    n: usize,
    edges: BTreeSet<(Element, Element)>,
}

impl Digraph {
    /// An empty digraph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Digraph {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Builds a digraph from an edge list.
    pub fn from_edges(n: usize, edges: &[(Element, Element)]) -> Self {
        let mut g = Digraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The directed cycle `0 → 1 → … → n-1 → 0`.
    pub fn cycle(n: usize) -> Self {
        let edges: Vec<(Element, Element)> = (0..n)
            .map(|i| (i as Element, ((i + 1) % n) as Element))
            .collect();
        Digraph::from_edges(n, &edges)
    }

    /// The directed path `P⃗_k` with `k` edges on `k+1` nodes.
    pub fn directed_path(k: usize) -> Self {
        let edges: Vec<(Element, Element)> =
            (0..k).map(|i| (i as Element, (i + 1) as Element)).collect();
        Digraph::from_edges(k + 1, &edges)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> Element {
        let v = self.n as Element;
        self.n += 1;
        v
    }

    /// Adds `count` nodes, returning the first new index.
    pub fn add_nodes(&mut self, count: usize) -> Element {
        let v = self.n as Element;
        self.n += count;
        v
    }

    /// Adds a directed edge (idempotent).
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range.
    pub fn add_edge(&mut self, u: Element, v: Element) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range 0..{}",
            self.n
        );
        self.edges.insert((u, v));
    }

    /// Edge membership.
    pub fn has_edge(&self, u: Element, v: Element) -> bool {
        self.edges.contains(&(u, v))
    }

    /// `true` when some node has a loop.
    pub fn has_loop(&self) -> bool {
        self.edges.iter().any(|&(u, v)| u == v)
    }

    /// Iterates over the edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (Element, Element)> + '_ {
        self.edges.iter().copied()
    }

    /// Out-neighbours of a node.
    pub fn successors(&self, u: Element) -> Vec<Element> {
        self.edges
            .range((u, 0)..=(u, Element::MAX))
            .map(|&(_, v)| v)
            .collect()
    }

    /// In-neighbours of a node (linear scan).
    pub fn predecessors(&self, u: Element) -> Vec<Element> {
        self.edges
            .iter()
            .filter(|&&(_, v)| v == u)
            .map(|&(w, _)| w)
            .collect()
    }

    /// The disjoint union; nodes of `other` are shifted by `self.n()`.
    pub fn disjoint_union(&self, other: &Digraph) -> Digraph {
        let off = self.n as Element;
        let mut g = self.clone();
        g.n += other.n;
        for (u, v) in other.edges() {
            g.edges.insert((u + off, v + off));
        }
        g
    }

    /// Glues another digraph into this one, identifying some of its nodes
    /// with existing nodes. `identify[i] = Some(v)` maps node `i` of
    /// `other` to existing node `v`; `None` allocates a fresh node.
    /// Returns the resulting position of every node of `other`.
    ///
    /// This is the workhorse for building the paper's gadgets, which are
    /// assembled by gluing copies of oriented paths at endpoints.
    pub fn glue(&mut self, other: &Digraph, identify: &[Option<Element>]) -> Vec<Element> {
        assert_eq!(identify.len(), other.n(), "one directive per node");
        let placed: Vec<Element> = identify
            .iter()
            .map(|slot| match slot {
                Some(v) => {
                    assert!((*v as usize) < self.n, "glue target out of range");
                    *v
                }
                None => self.add_node(),
            })
            .collect();
        for (u, v) in other.edges() {
            self.add_edge(placed[u as usize], placed[v as usize]);
        }
        placed
    }

    /// Identifies node `b` into node `a` (quotient by merging two nodes),
    /// compacting node indices. Returns the old→new node mapping.
    pub fn identify(&self, a: Element, b: Element) -> (Digraph, Vec<Element>) {
        let map: Vec<Element> = (0..self.n as Element)
            .map(|x| if x == b { a } else { x })
            .collect();
        // compact
        let mut used: Vec<Element> = map.clone();
        used.sort_unstable();
        used.dedup();
        let compact = |x: Element| used.binary_search(&map[x as usize]).unwrap() as Element;
        let mut g = Digraph::new(used.len());
        for (u, v) in self.edges() {
            g.add_edge(compact(u), compact(v));
        }
        let full_map: Vec<Element> = (0..self.n as Element).map(compact).collect();
        (g, full_map)
    }

    /// Reverses every edge.
    pub fn reverse(&self) -> Digraph {
        let mut g = Digraph::new(self.n);
        for (u, v) in self.edges() {
            g.add_edge(v, u);
        }
        g
    }

    /// Weakly connected components; returns the component id of each node.
    pub fn weak_components(&self) -> (usize, Vec<u32>) {
        let mut comp = vec![u32::MAX; self.n];
        let mut adj: Vec<Vec<Element>> = vec![Vec::new(); self.n];
        for (u, v) in self.edges() {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut n_comp = 0;
        for start in 0..self.n {
            if comp[start] != u32::MAX {
                continue;
            }
            let id = n_comp as u32;
            n_comp += 1;
            let mut stack = vec![start as Element];
            comp[start] = id;
            while let Some(u) = stack.pop() {
                for &v in &adj[u as usize] {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = id;
                        stack.push(v);
                    }
                }
            }
        }
        (n_comp, comp)
    }

    /// Converts to a relational structure over the graphs vocabulary.
    pub fn to_structure(&self) -> Structure {
        let vocab = Vocabulary::graphs();
        let e = vocab.rel("E").expect("graphs vocabulary");
        let mut b = StructureBuilder::new(vocab, self.n);
        for (u, v) in self.edges() {
            b.add(e, &[u, v]);
        }
        b.finish()
    }

    /// Reads a digraph back from a structure over the graphs vocabulary.
    ///
    /// # Panics
    ///
    /// Panics when the vocabulary is not `{E/2}`.
    pub fn from_structure(s: &Structure) -> Digraph {
        let e = s
            .vocabulary()
            .rel("E")
            .expect("structure must be over the graphs vocabulary");
        assert_eq!(s.vocabulary().arity(e), 2);
        let mut g = Digraph::new(s.universe_size());
        for t in s.tuples(e) {
            g.add_edge(t[0], t[1]);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_path() {
        let c = Digraph::cycle(4);
        assert_eq!(c.edge_count(), 4);
        assert!(c.has_edge(3, 0));
        let p = Digraph::directed_path(3);
        assert_eq!(p.n(), 4);
        assert_eq!(p.edge_count(), 3);
    }

    #[test]
    fn structure_roundtrip() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 1), (2, 0)]);
        let s = g.to_structure();
        assert_eq!(Digraph::from_structure(&s), g);
    }

    #[test]
    fn glue_paths() {
        // Glue a path of 2 edges between existing nodes 0 and 1.
        let mut g = Digraph::new(2);
        let p = Digraph::directed_path(2);
        let placed = g.glue(&p, &[Some(0), None, Some(1)]);
        assert_eq!(placed[0], 0);
        assert_eq!(placed[2], 1);
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, placed[1]));
        assert!(g.has_edge(placed[1], 1));
    }

    #[test]
    fn identify_merges_and_compacts() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (h, map) = g.identify(0, 2);
        assert_eq!(h.n(), 3);
        assert_eq!(map[0], map[2]);
        // C4 with opposite nodes identified: edges (0,1),(1,0),(0,3'),(3',0)
        assert_eq!(h.edge_count(), 4);
    }

    #[test]
    fn weak_components() {
        let g = Digraph::from_edges(5, &[(0, 1), (2, 3)]);
        let (n, comp) = g.weak_components();
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn successors_predecessors() {
        let g = Digraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.successors(0), vec![1, 2]);
        assert_eq!(g.predecessors(2), vec![0, 1]);
    }

    #[test]
    fn reverse() {
        let g = Digraph::from_edges(2, &[(0, 1)]);
        assert!(g.reverse().has_edge(1, 0));
    }

    #[test]
    fn disjoint_union_shifts() {
        let g = Digraph::cycle(3).disjoint_union(&Digraph::cycle(2));
        assert_eq!(g.n(), 5);
        assert!(g.has_edge(3, 4));
        assert!(g.has_edge(4, 3));
    }
}
