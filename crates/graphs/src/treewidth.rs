//! Treewidth: exact decision procedure and tree decompositions.
//!
//! `TW(k)` — CQs whose Gaifman graph has treewidth at most `k` — is the
//! graph-based tractable class of the paper (Grohe, Schwentick & Segoufin:
//! for graph-based classes, bounded treewidth *characterizes* tractable CQ
//! evaluation). Membership `tw(G) ≤ k` is decidable in linear time for
//! fixed `k` (Bodlaender); here we implement an exact elimination-order
//! branch-and-bound with memoization, plus the special cases the paper
//! leans on:
//!
//! * `tw ≤ 1` ⇔ the graph is a forest (loops ignored — the hypergraph of a
//!   loop atom `E(x,x)` is a single hyperedge, hence acyclic);
//! * loop-free graphs of treewidth ≤ k are `(k+1)`-colorable (used in
//!   Theorem 5.10).
//!
//! The exact search is exponential in the worst case but instantaneous on
//! query-sized graphs (approximation candidates never exceed `|Q|` nodes).

use crate::ugraph::UGraph;
use cqapx_structures::Element;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A tree decomposition: bags plus tree edges between bag indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeDecomposition {
    /// The bags (each a sorted set of vertices).
    pub bags: Vec<Vec<Element>>,
    /// Edges of the decomposition tree (pairs of bag indices).
    pub tree_edges: Vec<(usize, usize)>,
}

/// Vertex positions shared by one parent↔child edge of a rooted
/// decomposition: for every vertex of `bag(child) ∩ bag(parent)`, its
/// index in the child's (sorted) bag and in the parent's (sorted) bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedBagPositions {
    /// Positions of the shared vertices in the child's bag.
    pub child_pos: Vec<usize>,
    /// Positions of the shared vertices in the parent's bag.
    pub parent_pos: Vec<usize>,
}

/// A [`TreeDecomposition`] oriented for plan compilation: a fixed root,
/// parent links, a bottom-up traversal order, children lists, and the
/// shared-vertex positions of every tree edge — everything a consumer
/// (e.g. a bounded-treewidth query plan) would otherwise re-derive from
/// the undirected edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedDecomposition {
    /// The chosen root bag (always bag 0 — deterministic).
    pub root: usize,
    /// Parent bag of each bag (`None` exactly for the root).
    pub parent: Vec<Option<usize>>,
    /// Bottom-up traversal order: children before parents, root last.
    pub order: Vec<usize>,
    /// Children lists, in ascending bag-index order.
    pub children: Vec<Vec<usize>>,
    /// For each non-root bag `u`: the positions of `bag(u) ∩ bag(parent)`
    /// in both bags (`None` exactly for the root).
    pub edge_shared: Vec<Option<SharedBagPositions>>,
}

impl TreeDecomposition {
    /// Orients the decomposition tree at bag 0 and precomputes the
    /// traversal structure plan compilation needs. Deterministic: the
    /// same decomposition always yields the same rooted form.
    ///
    /// # Panics
    ///
    /// Panics when the edge list is not a tree over all bags (which
    /// [`treewidth_at_most`] guarantees, and `validate` checks).
    pub fn rooted(&self) -> RootedDecomposition {
        let n = self.bags.len();
        assert!(n > 0, "cannot root an empty decomposition");
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.tree_edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let root = 0;
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Iterative DFS from the root; `order` collects the post-order,
        // which is exactly a bottom-up (children-before-parents) order.
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(usize, bool)> = vec![(root, false)];
        seen[root] = true;
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                order.push(v);
                continue;
            }
            stack.push((v, true));
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    parent[w] = Some(v);
                    children[v].push(w);
                    stack.push((w, false));
                }
            }
        }
        assert_eq!(order.len(), n, "decomposition tree must be connected");
        let edge_shared: Vec<Option<SharedBagPositions>> = (0..n)
            .map(|u| {
                parent[u].map(|p| {
                    let (cb, pb) = (&self.bags[u], &self.bags[p]);
                    let mut shared = SharedBagPositions {
                        child_pos: Vec::new(),
                        parent_pos: Vec::new(),
                    };
                    let (mut i, mut j) = (0, 0);
                    while i < cb.len() && j < pb.len() {
                        match cb[i].cmp(&pb[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                shared.child_pos.push(i);
                                shared.parent_pos.push(j);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    shared
                })
            })
            .collect();
        RootedDecomposition {
            root,
            parent,
            order,
            children,
            edge_shared,
        }
    }
}

impl TreeDecomposition {
    /// The width: `max |bag| − 1` (−1 ≡ returns 0 for the empty graph).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len().saturating_sub(1))
            .max()
            .unwrap_or(0)
    }

    /// Validates the three tree-decomposition conditions against a graph:
    /// every vertex covered, every (non-loop) edge inside a bag, and the
    /// bags containing each vertex forming a connected subtree.
    pub fn validate(&self, g: &UGraph) -> Result<(), String> {
        let nb = self.bags.len();
        // Tree shape: connected and acyclic on bag indices.
        if nb > 0 {
            if self.tree_edges.len() + 1 != nb {
                return Err(format!(
                    "decomposition tree has {} edges for {} bags",
                    self.tree_edges.len(),
                    nb
                ));
            }
            let tree = UGraph::from_edges(
                nb,
                &self
                    .tree_edges
                    .iter()
                    .map(|&(a, b)| (a as Element, b as Element))
                    .collect::<Vec<_>>(),
            );
            if !tree.is_forest() {
                return Err("decomposition tree contains a cycle".into());
            }
            let (ncomp, _) = tree.components();
            if ncomp != 1 {
                return Err("decomposition tree is disconnected".into());
            }
        }
        // Vertex coverage.
        let mut covered = vec![false; g.n()];
        for b in &self.bags {
            for &v in b {
                if (v as usize) >= g.n() {
                    return Err(format!("bag vertex {v} out of range"));
                }
                covered[v as usize] = true;
            }
        }
        if let Some(v) = covered.iter().position(|&c| !c) {
            return Err(format!("vertex {v} not covered by any bag"));
        }
        // Edge coverage.
        for (u, v) in g.edges() {
            if !self.bags.iter().any(|b| b.contains(&u) && b.contains(&v)) {
                return Err(format!("edge ({u},{v}) not inside any bag"));
            }
        }
        // Connectivity of occurrences.
        for v in 0..g.n() as Element {
            let occ: Vec<usize> = (0..nb).filter(|&i| self.bags[i].contains(&v)).collect();
            if occ.is_empty() {
                continue;
            }
            let mut reach: HashSet<usize> = HashSet::new();
            reach.insert(occ[0]);
            let mut frontier = vec![occ[0]];
            while let Some(b) = frontier.pop() {
                for &(x, y) in &self.tree_edges {
                    let other = if x == b {
                        Some(y)
                    } else if y == b {
                        Some(x)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if self.bags[o].contains(&v) && reach.insert(o) {
                            frontier.push(o);
                        }
                    }
                }
            }
            if reach.len() != occ.len() {
                return Err(format!("occurrences of vertex {v} are disconnected"));
            }
        }
        Ok(())
    }
}

/// Internal: adjacency as 64-bit masks (per-component search keeps n ≤ 64).
struct MaskGraph {
    adj: Vec<u64>,
    n: usize,
}

impl MaskGraph {
    /// Neighbours of `v` *outside* the eliminated set, reachable through
    /// eliminated vertices: the degree of `v` in the fill-in graph after
    /// eliminating `elim`.
    fn fill_neighbors(&self, v: usize, elim: u64) -> u64 {
        let mut seen = 1u64 << v;
        let mut frontier = 1u64 << v;
        let mut result = 0u64;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let u = f.trailing_zeros() as usize;
                f &= f - 1;
                let nb = self.adj[u] & !seen;
                result |= nb & !elim;
                next |= nb & elim;
                seen |= nb;
            }
            frontier = next;
        }
        result
    }
}

/// Decides `tw(component) ≤ k` by branch-and-bound over elimination
/// orders with a memo of refuted eliminated-sets. Returns an elimination
/// order on success.
fn component_tw_at_most(g: &MaskGraph, k: usize) -> Option<Vec<usize>> {
    let full: u64 = if g.n == 64 { !0 } else { (1u64 << g.n) - 1 };
    let mut dead: HashSet<u64> = HashSet::new();
    let mut order = Vec::with_capacity(g.n);

    fn rec(
        g: &MaskGraph,
        k: usize,
        elim: u64,
        full: u64,
        dead: &mut HashSet<u64>,
        order: &mut Vec<usize>,
    ) -> bool {
        if elim == full {
            return true;
        }
        if dead.contains(&elim) {
            return false;
        }
        let mut remaining = full & !elim;
        // Gather candidates with fill-degree ≤ k; eliminate simplicial
        // vertices (fill-neighbourhood already a clique) greedily — always
        // safe.
        let mut candidates: Vec<(usize, usize, u64)> = Vec::new();
        while remaining != 0 {
            let v = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let nb = g.fill_neighbors(v, elim);
            let deg = nb.count_ones() as usize;
            if deg <= k {
                // simplicial check: all fill-neighbours pairwise adjacent
                // in the fill graph.
                let mut simplicial = true;
                let mut rest = nb;
                'outer: while rest != 0 {
                    let a = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    let a_nb = g.fill_neighbors(a, elim);
                    if nb & !a_nb & !(1u64 << a) != 0 {
                        simplicial = false;
                        break 'outer;
                    }
                }
                if simplicial {
                    order.push(v);
                    if rec(g, k, elim | (1u64 << v), full, dead, order) {
                        return true;
                    }
                    order.pop();
                    dead.insert(elim);
                    return false;
                }
                candidates.push((deg, v, nb));
            }
        }
        candidates.sort_unstable();
        for (_, v, _) in candidates {
            order.push(v);
            if rec(g, k, elim | (1u64 << v), full, dead, order) {
                return true;
            }
            order.pop();
        }
        dead.insert(elim);
        false
    }

    if rec(g, k, 0, full, &mut dead, &mut order) {
        Some(order)
    } else {
        None
    }
}

/// Builds a tree decomposition of one component from an elimination order.
fn decomposition_from_order(
    g: &MaskGraph,
    order: &[usize],
    vertex_names: &[Element],
) -> TreeDecomposition {
    let n = g.n;
    let mut bags: Vec<Vec<Element>> = Vec::with_capacity(n);
    let mut bag_of_vertex = vec![usize::MAX; n];
    let mut tree_edges = Vec::new();
    let mut elim = 0u64;
    // position in elimination order
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    for (i, &v) in order.iter().enumerate() {
        let nb = g.fill_neighbors(v, elim);
        let mut bag: Vec<Element> = vec![vertex_names[v]];
        let mut rest = nb;
        let mut first_successor: Option<usize> = None;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            bag.push(vertex_names[u]);
            if first_successor.is_none_or(|f| pos[u] < pos[f]) {
                first_successor = Some(u);
            }
        }
        bag.sort_unstable();
        let bag_idx = bags.len();
        bags.push(bag);
        bag_of_vertex[v] = bag_idx;
        if let Some(u) = first_successor {
            // connect later, once u's bag exists: record a pending edge via
            // a second pass. Use negative marker: store (bag_idx, u).
            tree_edges.push((bag_idx, usize::MAX - u));
        } else if i + 1 == order.len() {
            // last vertex: root, nothing to connect
        } else {
            // isolated in fill graph: connect to the next bag created to
            // keep the tree connected (harmless: shares no vertices).
            tree_edges.push((bag_idx, usize::MAX - order[i + 1]));
        }
        elim |= 1u64 << v;
    }
    // Resolve pending edges.
    let resolved: Vec<(usize, usize)> = tree_edges
        .into_iter()
        .map(|(b, marker)| {
            let u = usize::MAX - marker;
            (b, bag_of_vertex[u])
        })
        .collect();
    TreeDecomposition {
        bags,
        tree_edges: resolved,
    }
}

/// Decides whether `tw(g) ≤ k`, returning a witness decomposition.
///
/// Loops are ignored (see the module docs). Works per connected component;
/// each component must have at most 64 vertices (query-sized inputs —
/// approximation candidates never exceed the number of query variables).
///
/// **Deterministic**: the same graph always yields the same decomposition
/// — bags in the same order with the same tree edges. The search branches
/// in a fixed order (candidates sorted by `(fill-degree, vertex)`), bags
/// are emitted in elimination order, and no hash-iteration order ever
/// reaches the output; plan compilers and caches may rely on this.
///
/// # Examples
///
/// ```
/// use cqapx_graphs::{treewidth, UGraph};
///
/// let c4 = UGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert!(treewidth::treewidth_at_most(&c4, 2).is_some());
/// assert!(treewidth::treewidth_at_most(&c4, 1).is_none());
/// ```
pub fn treewidth_at_most(g: &UGraph, k: usize) -> Option<TreeDecomposition> {
    if k == 0 {
        // width 0: no edges
        if g.edge_count() > 0 {
            return None;
        }
        let bags: Vec<Vec<Element>> = (0..g.n() as Element).map(|v| vec![v]).collect();
        let tree_edges = (1..g.n()).map(|i| (i - 1, i)).collect();
        let td = TreeDecomposition { bags, tree_edges };
        return Some(td);
    }
    if k == 1 && !g.is_forest() {
        return None;
    }
    let (ncomp, comp) = g.components();
    let mut all_bags: Vec<Vec<Element>> = Vec::new();
    let mut all_edges: Vec<(usize, usize)> = Vec::new();
    let mut component_roots: Vec<usize> = Vec::new();
    for c in 0..ncomp as u32 {
        let vertices: Vec<Element> = (0..g.n() as Element)
            .filter(|&v| comp[v as usize] == c)
            .collect();
        assert!(
            vertices.len() <= 64,
            "treewidth search supports components of at most 64 vertices"
        );
        let index_of = |v: Element| vertices.iter().position(|&x| x == v).unwrap();
        let mut adj = vec![0u64; vertices.len()];
        for (u, v) in g.edges() {
            if comp[u as usize] == c {
                let iu = index_of(u);
                let iv = index_of(v);
                adj[iu] |= 1u64 << iv;
                adj[iv] |= 1u64 << iu;
            }
        }
        let mg = MaskGraph {
            adj,
            n: vertices.len(),
        };
        let order = component_tw_at_most(&mg, k)?;
        let td = decomposition_from_order(&mg, &order, &vertices);
        let off = all_bags.len();
        component_roots.push(off);
        all_bags.extend(td.bags);
        all_edges.extend(td.tree_edges.iter().map(|&(a, b)| (a + off, b + off)));
    }
    // Join the per-component trees into one tree.
    for w in component_roots.windows(2) {
        all_edges.push((w[0], w[1]));
    }
    if all_bags.is_empty() {
        all_bags.push(Vec::new());
    }
    let td = TreeDecomposition {
        bags: all_bags,
        tree_edges: all_edges,
    };
    debug_assert!(td.validate(g).is_ok(), "{:?}", td.validate(g));
    Some(td)
}

/// The exact treewidth of `g` (0 for edgeless graphs; loops ignored).
pub fn treewidth(g: &UGraph) -> usize {
    for k in 0..g.n().max(1) {
        if treewidth_at_most(g, k).is_some() {
            return k;
        }
    }
    g.n().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trees_have_width_1() {
        let t = UGraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(treewidth(&t), 1);
        let td = treewidth_at_most(&t, 1).unwrap();
        td.validate(&t).unwrap();
        assert!(td.width() <= 1);
    }

    #[test]
    fn cycles_have_width_2() {
        for n in 3..=8 {
            let edges: Vec<(Element, Element)> = (0..n)
                .map(|i| (i as Element, ((i + 1) % n) as Element))
                .collect();
            let c = UGraph::from_edges(n, &edges);
            assert_eq!(treewidth(&c), 2, "C{n}");
            let td = treewidth_at_most(&c, 2).unwrap();
            td.validate(&c).unwrap();
        }
    }

    #[test]
    fn complete_graphs() {
        for m in 1..=7 {
            let k = UGraph::complete(m);
            assert_eq!(treewidth(&k), m - 1, "K{m}");
        }
    }

    #[test]
    fn grid_treewidth() {
        // tw(P3 x P3) = 3.
        let g = crate::generators::grid(3, 3);
        let u = UGraph::underlying(&g);
        assert_eq!(treewidth(&u), 3);
        let td = treewidth_at_most(&u, 3).unwrap();
        td.validate(&u).unwrap();
    }

    #[test]
    fn loops_ignored() {
        let g = UGraph::from_edges(2, &[(0, 1), (0, 0)]);
        assert_eq!(treewidth(&g), 1);
    }

    #[test]
    fn edgeless() {
        let g = UGraph::new(4);
        assert_eq!(treewidth(&g), 0);
        let td = treewidth_at_most(&g, 0).unwrap();
        td.validate(&g).unwrap();
    }

    #[test]
    fn disconnected_components() {
        // K4 plus a triangle: tw = 3.
        let mut edges = vec![];
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        edges.extend([(4, 5), (5, 6), (6, 4)]);
        let g = UGraph::from_edges(7, &edges);
        assert_eq!(treewidth(&g), 3);
        let td = treewidth_at_most(&g, 3).unwrap();
        td.validate(&g).unwrap();
    }

    #[test]
    fn wheel_width_3() {
        let g = crate::generators::wheel(5);
        let u = UGraph::underlying(&g);
        assert_eq!(treewidth(&u), 3);
    }

    #[test]
    fn validate_catches_bad_decompositions() {
        let c3 = UGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        // Missing edge coverage.
        let bad = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2]],
            tree_edges: vec![(0, 1)],
        };
        assert!(bad.validate(&c3).is_err());
        // Disconnected occurrences.
        let p3 = UGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let bad2 = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![0]],
            tree_edges: vec![(0, 1), (1, 2)],
        };
        assert!(bad2.validate(&p3).is_err());
    }

    #[test]
    fn k_minus_one_rejected_for_clique() {
        let k5 = UGraph::complete(5);
        assert!(treewidth_at_most(&k5, 3).is_none());
        assert!(treewidth_at_most(&k5, 4).is_some());
    }

    #[test]
    fn decomposition_is_deterministic() {
        // Same graph, rebuilt from scratch each time: identical bags in
        // identical order with identical tree edges, at every width.
        let build = || {
            let mut edges = vec![(0u32, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
            edges.extend([(4, 5), (5, 6), (6, 4), (2, 4)]);
            UGraph::from_edges(7, &edges)
        };
        for k in 2..=4 {
            let a = treewidth_at_most(&build(), k).unwrap();
            let b = treewidth_at_most(&build(), k).unwrap();
            assert_eq!(a, b, "width {k}");
            assert_eq!(a.rooted(), b.rooted(), "rooted width {k}");
        }
    }

    #[test]
    fn rooted_orients_and_orders() {
        let c5: Vec<(Element, Element)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let g = UGraph::from_edges(5, &c5);
        let td = treewidth_at_most(&g, 2).unwrap();
        let r = td.rooted();
        assert_eq!(r.root, 0);
        assert!(r.parent[r.root].is_none());
        assert!(r.edge_shared[r.root].is_none());
        assert_eq!(r.order.len(), td.bags.len());
        assert_eq!(*r.order.last().unwrap(), r.root);
        // Children before parents, and parent/children agree.
        let pos = |x: usize| r.order.iter().position(|&y| y == x).unwrap();
        for u in 0..td.bags.len() {
            if let Some(p) = r.parent[u] {
                assert!(pos(u) < pos(p), "child {u} must precede parent {p}");
                assert!(r.children[p].contains(&u));
                // Shared positions really index the shared vertices.
                let s = r.edge_shared[u].as_ref().unwrap();
                assert_eq!(s.child_pos.len(), s.parent_pos.len());
                for (&ci, &pi) in s.child_pos.iter().zip(&s.parent_pos) {
                    assert_eq!(td.bags[u][ci], td.bags[p][pi]);
                }
                // And they are exhaustive: every common vertex is listed.
                let common = td.bags[u].iter().filter(|v| td.bags[p].contains(v)).count();
                assert_eq!(s.child_pos.len(), common);
            } else {
                assert_eq!(u, r.root);
            }
        }
    }

    #[test]
    fn rooted_on_single_bag() {
        let g = UGraph::new(1);
        let td = treewidth_at_most(&g, 1).unwrap();
        assert_eq!(td.bags.len(), 1);
        let r = td.rooted();
        assert_eq!(r.order, vec![0]);
        assert!(r.children[0].is_empty());
    }
}
