//! Digraph and graph algorithms backing the graph-based query classes.
//!
//! The PODS 2012 paper studies approximations of conjunctive queries within
//! classes defined by the **graph** `G(Q)` of a query: bounded treewidth
//! `TW(k)` (with `TW(1)` = acyclic for queries over graphs). Its structural
//! results hinge on digraph combinatorics from Hell & Nešetřil's theory of
//! graph homomorphisms:
//!
//! * oriented paths/cycles written as `{0,1}` strings (`0` = forward edge,
//!   `1` = backward edge), their **net length**;
//! * **balanced** digraphs, **levels** and **height** (Lemma 4.5: between
//!   balanced digraphs of equal height, homomorphisms preserve levels);
//! * bipartiteness (`G → K⃗₂`) and `(k+1)`-colorability (`G → K⃗_{k+1}`),
//!   which characterize nontrivial `TW(k)`-approximations (Thms 5.1, 5.10);
//! * **treewidth** and tree decompositions, the membership test of `TW(k)`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod balance;
pub mod coloring;
pub mod digraph;
pub mod generators;
pub mod oriented;
pub mod treewidth;
pub mod ugraph;

pub use balance::{height, is_balanced, levels, BalanceInfo};
pub use coloring::{chromatic_number, is_bipartite, is_k_colorable};
pub use digraph::Digraph;
pub use oriented::OrientedPath;
pub use treewidth::{treewidth, treewidth_at_most, TreeDecomposition};
pub use ugraph::UGraph;
