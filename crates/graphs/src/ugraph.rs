//! Simple undirected graphs (underlying graphs of digraphs, Gaifman graphs
//! of queries).

use crate::digraph::Digraph;
use cqapx_structures::Element;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A simple undirected graph on nodes `0..n`.
///
/// Loops are tracked separately: the **underlying graph** `Gᵘ` of a digraph
/// discards orientations, and for treewidth/coloring purposes loops matter
/// differently (a loop makes a digraph non-`k`-colorable for every `k`, but
/// the hypergraph of the atom `E(x,x)` is a single bag, so the query is
/// acyclic — see the discussion after Theorem 5.8 in the paper).
///
/// # Examples
///
/// ```
/// use cqapx_graphs::{Digraph, UGraph};
///
/// let d = Digraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
/// let u = UGraph::underlying(&d);
/// assert_eq!(u.edge_count(), 2); // {0,1} and {1,2}
/// assert!(u.has_self_loop(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UGraph {
    n: usize,
    edges: BTreeSet<(Element, Element)>,
    loops: BTreeSet<Element>,
}

impl UGraph {
    /// An empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        UGraph {
            n,
            edges: BTreeSet::new(),
            loops: BTreeSet::new(),
        }
    }

    /// Builds from an edge list (unordered pairs; `(v, v)` records a loop).
    pub fn from_edges(n: usize, edges: &[(Element, Element)]) -> Self {
        let mut g = UGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The underlying undirected graph `Gᵘ` of a digraph.
    pub fn underlying(d: &Digraph) -> Self {
        let mut g = UGraph::new(d.n());
        for (u, v) in d.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// The complete graph `K_m`.
    pub fn complete(m: usize) -> Self {
        let mut g = UGraph::new(m);
        for u in 0..m as Element {
            for v in (u + 1)..m as Element {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of non-loop edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge (normalized; `(v, v)` records a loop).
    pub fn add_edge(&mut self, u: Element, v: Element) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge out of range"
        );
        if u == v {
            self.loops.insert(u);
        } else {
            self.edges.insert((u.min(v), u.max(v)));
        }
    }

    /// Edge membership (ignores loops).
    pub fn has_edge(&self, u: Element, v: Element) -> bool {
        u != v && self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// `true` when node `v` has a loop.
    pub fn has_self_loop(&self, v: Element) -> bool {
        self.loops.contains(&v)
    }

    /// `true` when some node has a loop.
    pub fn has_any_loop(&self) -> bool {
        !self.loops.is_empty()
    }

    /// Iterates over the non-loop edges as `(min, max)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (Element, Element)> + '_ {
        self.edges.iter().copied()
    }

    /// Neighbour lists (loops excluded).
    pub fn adjacency(&self) -> Vec<Vec<Element>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        adj
    }

    /// `true` when the graph (ignoring loops) is a forest.
    pub fn is_forest(&self) -> bool {
        // A graph is a forest iff every component has |E| = |V| - 1, i.e.
        // no cycle is found during DFS.
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            // DFS with parent tracking.
            let mut stack: Vec<(Element, Element)> = vec![(start as Element, Element::MAX)];
            seen[start] = true;
            while let Some((u, parent)) = stack.pop() {
                let mut parent_edges = 0;
                for &v in &adj[u as usize] {
                    if v == parent && parent_edges == 0 {
                        // Skip one edge back to the parent (simple graphs
                        // have no parallel edges).
                        parent_edges += 1;
                        continue;
                    }
                    if seen[v as usize] {
                        return false;
                    }
                    seen[v as usize] = true;
                    stack.push((v, u));
                }
            }
        }
        true
    }

    /// Connected components: `(count, component id per node)`.
    pub fn components(&self) -> (usize, Vec<u32>) {
        let adj = self.adjacency();
        let mut comp = vec![u32::MAX; self.n];
        let mut count = 0;
        for start in 0..self.n {
            if comp[start] != u32::MAX {
                continue;
            }
            let id = count as u32;
            count += 1;
            comp[start] = id;
            let mut stack = vec![start as Element];
            while let Some(u) = stack.pop() {
                for &v in &adj[u as usize] {
                    if comp[v as usize] == u32::MAX {
                        comp[v as usize] = id;
                        stack.push(v);
                    }
                }
            }
        }
        (count, comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underlying_discards_orientation() {
        let d = Digraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let u = UGraph::underlying(&d);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(1, 0));
    }

    #[test]
    fn forest_detection() {
        assert!(UGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]).is_forest());
        assert!(!UGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).is_forest());
        // two-node double edge collapses in a simple graph: still forest
        assert!(UGraph::from_edges(2, &[(0, 1), (1, 0)]).is_forest());
        // loops don't affect forest-ness (hypergraph convention)
        assert!(UGraph::from_edges(2, &[(0, 1), (1, 1)]).is_forest());
        // empty graph
        assert!(UGraph::new(5).is_forest());
    }

    #[test]
    fn complete_graph() {
        let k4 = UGraph::complete(4);
        assert_eq!(k4.edge_count(), 6);
        assert!(!k4.is_forest());
    }

    #[test]
    fn components() {
        let g = UGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let (n, comp) = g.components();
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_ne!(comp[0], comp[4]);
    }
}
