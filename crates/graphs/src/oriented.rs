//! Oriented paths written as `{0,1}` strings.
//!
//! Following Hell & Nešetřil (and the paper's Propositions 4.4 and the
//! appendix), an oriented path is a digraph on nodes `u₀, …, u_n` where for
//! each `i` exactly one of `(u_i, u_{i+1})` ("forward", written `0`) or
//! `(u_{i+1}, u_i)` ("backward", written `1`) is an edge. The **net
//! length** is #forward − #backward. For example `P = 001` is two forward
//! edges followed by a backward edge.

use crate::digraph::Digraph;
use cqapx_structures::Element;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An oriented path described by its `{0,1}` string.
///
/// # Examples
///
/// ```
/// use cqapx_graphs::OrientedPath;
///
/// let p = OrientedPath::parse("001000");
/// assert_eq!(p.len(), 6);
/// assert_eq!(p.net_length(), 4);
/// let g = p.to_digraph();
/// assert_eq!(g.n(), 7);
/// assert!(g.has_edge(0, 1)); // forward
/// assert!(g.has_edge(3, 2)); // backward (third symbol is 1)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrientedPath {
    /// `false` = forward edge (`0`), `true` = backward edge (`1`).
    steps: Vec<bool>,
}

impl OrientedPath {
    /// Parses a `{0,1}` string, e.g. `"001000"`.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`/`1`.
    pub fn parse(s: &str) -> Self {
        let steps = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid oriented-path symbol {other:?}"),
            })
            .collect();
        OrientedPath { steps }
    }

    /// The directed path `0^k` of length `k`.
    pub fn forward(k: usize) -> Self {
        OrientedPath {
            steps: vec![false; k],
        }
    }

    /// Builds from explicit step directions (`false` = forward).
    pub fn from_steps(steps: Vec<bool>) -> Self {
        OrientedPath { steps }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the empty path (a single node).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Net length: forward edges minus backward edges.
    pub fn net_length(&self) -> i64 {
        self.steps.iter().map(|&b| if b { -1i64 } else { 1 }).sum()
    }

    /// The step directions.
    pub fn steps(&self) -> &[bool] {
        &self.steps
    }

    /// The reversed path walked from the terminal node (swaps the roles of
    /// initial and terminal node; each step flips direction).
    pub fn reversed(&self) -> OrientedPath {
        OrientedPath {
            steps: self.steps.iter().rev().map(|&b| !b).collect(),
        }
    }

    /// Concatenation: walk `self`, then `other` from `self`'s terminal node.
    pub fn concat(&self, other: &OrientedPath) -> OrientedPath {
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&other.steps);
        OrientedPath { steps }
    }

    /// Materializes the path as a digraph on nodes `0..=len()`, with the
    /// initial node `0` and terminal node `len()`.
    pub fn to_digraph(&self) -> Digraph {
        let mut g = Digraph::new(self.len() + 1);
        for (i, &back) in self.steps.iter().enumerate() {
            let (u, v) = (i as Element, (i + 1) as Element);
            if back {
                g.add_edge(v, u);
            } else {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Glues this path into `g` from node `from` to node `to`, creating the
    /// interior nodes fresh. Returns the node sequence `u₀ … u_n` (so
    /// `u₀ = from`, `u_n = to`).
    ///
    /// The paper's figures draw "an edge `uv` labeled with `P`" for exactly
    /// this operation.
    pub fn glue_into(&self, g: &mut Digraph, from: Element, to: Element) -> Vec<Element> {
        let mut nodes = Vec::with_capacity(self.len() + 1);
        nodes.push(from);
        for _ in 1..self.len() {
            nodes.push(g.add_node());
        }
        if self.is_empty() {
            assert_eq!(from, to, "empty path needs matching endpoints");
            return nodes;
        }
        nodes.push(to);
        for (i, &back) in self.steps.iter().enumerate() {
            let (u, v) = (nodes[i], nodes[i + 1]);
            if back {
                g.add_edge(v, u);
            } else {
                g.add_edge(u, v);
            }
        }
        nodes
    }
}

impl fmt::Display for OrientedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.steps {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_structures::HomProblem;

    #[test]
    fn parse_and_display() {
        let p = OrientedPath::parse("0101");
        assert_eq!(p.to_string(), "0101");
        assert_eq!(p.net_length(), 0);
    }

    #[test]
    fn forward_path() {
        let p = OrientedPath::forward(3);
        assert_eq!(p.to_string(), "000");
        assert_eq!(p.net_length(), 3);
    }

    #[test]
    fn reversal_negates_net_length() {
        let p = OrientedPath::parse("00100");
        assert_eq!(p.reversed().net_length(), -p.net_length());
        assert_eq!(p.reversed().reversed(), p);
    }

    #[test]
    fn concat_adds_net_length() {
        let a = OrientedPath::parse("001");
        let b = OrientedPath::parse("10");
        let c = a.concat(&b);
        assert_eq!(c.to_string(), "00110");
        assert_eq!(c.net_length(), a.net_length() + b.net_length());
    }

    #[test]
    fn digraph_shape() {
        let p = OrientedPath::parse("01");
        let g = p.to_digraph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 1));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn glue_into_graph() {
        let mut g = Digraph::new(2);
        let p = OrientedPath::parse("010");
        let nodes = p.glue_into(&mut g, 0, 1);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0], 0);
        assert_eq!(nodes[3], 1);
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn paper_p1_p2_incomparable_cores() {
        // Proposition 4.4 uses P1 = 001000 and P2 = 000100 and claims they
        // are incomparable cores. Verify with the hom engine.
        let p1 = OrientedPath::parse("001000").to_digraph().to_structure();
        let p2 = OrientedPath::parse("000100").to_digraph().to_structure();
        assert!(!HomProblem::new(&p1, &p2).exists());
        assert!(!HomProblem::new(&p2, &p1).exists());
        use cqapx_structures::{core_ops, Pointed};
        assert!(core_ops::is_core(&Pointed::boolean(p1)));
        assert!(core_ops::is_core(&Pointed::boolean(p2)));
    }
}
