//! Graph coloring: bipartiteness and `k`-colorability.
//!
//! For digraphs, `G` is `k`-colorable iff `G → K⃗_k` (the complete digraph
//! with edges both ways), iff the underlying undirected graph is
//! `k`-colorable and `G` has no loop. The paper uses:
//!
//! * **bipartiteness** (= 2-colorability) — Theorem 5.1: a Boolean graph CQ
//!   has a non-trivial acyclic approximation iff its tableau is bipartite;
//! * **(k+1)-colorability** — Theorem 5.10 / Corollary 5.11: a Boolean
//!   graph CQ has a non-trivial `TW(k)`-approximation iff its tableau is
//!   `(k+1)`-colorable (every loop-free graph of treewidth ≤ k is
//!   `(k+1)`-colorable).

use crate::digraph::Digraph;
use crate::ugraph::UGraph;
use cqapx_structures::Element;

/// 2-colors the underlying graph; returns the color classes, or `None`
/// when not bipartite (or a loop is present).
pub fn bipartition(g: &Digraph) -> Option<Vec<u8>> {
    if g.has_loop() {
        return None;
    }
    let u = UGraph::underlying(g);
    let adj = u.adjacency();
    let n = u.n();
    let mut color = vec![u8::MAX; n];
    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        let mut stack = vec![start as Element];
        while let Some(x) = stack.pop() {
            for &y in &adj[x as usize] {
                if color[y as usize] == u8::MAX {
                    color[y as usize] = 1 - color[x as usize];
                    stack.push(y);
                } else if color[y as usize] == color[x as usize] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

/// `true` when the digraph is bipartite (`G → K⃗₂`).
///
/// # Examples
///
/// ```
/// use cqapx_graphs::{coloring, Digraph};
///
/// assert!(coloring::is_bipartite(&Digraph::cycle(4)));
/// assert!(!coloring::is_bipartite(&Digraph::cycle(3)));
/// ```
pub fn is_bipartite(g: &Digraph) -> bool {
    bipartition(g).is_some()
}

/// Searches for a proper `k`-coloring of the underlying graph (loops make
/// the digraph uncolorable). Returns a witness coloring.
///
/// Backtracking with MRV on the saturation degree (DSATUR-style), exact.
pub fn k_coloring(g: &Digraph, k: usize) -> Option<Vec<u32>> {
    if g.has_loop() {
        return None;
    }
    let u = UGraph::underlying(g);
    k_coloring_ugraph(&u, k)
}

/// Exact `k`-coloring of a loop-free undirected graph.
pub fn k_coloring_ugraph(u: &UGraph, k: usize) -> Option<Vec<u32>> {
    if u.has_any_loop() {
        return None;
    }
    let n = u.n();
    if n == 0 {
        return Some(Vec::new());
    }
    if k == 0 {
        return None;
    }
    let adj = u.adjacency();
    let mut colors: Vec<Option<u32>> = vec![None; n];

    fn assignable(v: usize, c: u32, adj: &[Vec<Element>], colors: &[Option<u32>]) -> bool {
        adj[v].iter().all(|&w| colors[w as usize] != Some(c))
    }

    fn solve(adj: &[Vec<Element>], colors: &mut Vec<Option<u32>>, k: usize, max_used: u32) -> bool {
        // MRV: pick uncolored vertex with fewest available colors.
        let n = colors.len();
        let mut best: Option<(usize, usize)> = None; // (avail, vertex)
        for v in 0..n {
            if colors[v].is_none() {
                let avail = (0..k as u32)
                    .filter(|&c| assignable(v, c, adj, colors))
                    .count();
                if avail == 0 {
                    return false;
                }
                if best.is_none_or(|(a, _)| avail < a) {
                    best = Some((avail, v));
                }
            }
        }
        let v = match best {
            None => return true,
            Some((_, v)) => v,
        };
        // Symmetry breaking: allow at most one brand-new color.
        let cap = (max_used + 1).min(k as u32 - 1);
        for c in 0..=cap {
            if assignable(v, c, adj, colors) {
                colors[v] = Some(c);
                if solve(adj, colors, k, max_used.max(c)) {
                    return true;
                }
                colors[v] = None;
            }
        }
        false
    }

    if solve(&adj, &mut colors, k, 0) {
        Some(colors.into_iter().map(|c| c.unwrap_or(0)).collect())
    } else {
        None
    }
}

/// `true` when the digraph is `k`-colorable.
pub fn is_k_colorable(g: &Digraph, k: usize) -> bool {
    k_coloring(g, k).is_some()
}

/// The chromatic number of the digraph's underlying graph (`usize::MAX`
/// when a loop is present).
pub fn chromatic_number(g: &Digraph) -> usize {
    if g.has_loop() {
        return usize::MAX;
    }
    if g.n() == 0 {
        return 0;
    }
    for k in 1..=g.n() {
        if is_k_colorable(g, k) {
            return k;
        }
    }
    unreachable!("every loop-free graph on n nodes is n-colorable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycles() {
        assert!(is_bipartite(&Digraph::cycle(4)));
        assert!(!is_bipartite(&Digraph::cycle(5)));
        assert_eq!(chromatic_number(&Digraph::cycle(5)), 3);
        assert_eq!(chromatic_number(&Digraph::cycle(6)), 2);
    }

    #[test]
    fn loops_kill_coloring() {
        let g = Digraph::from_edges(2, &[(0, 1), (1, 1)]);
        assert!(!is_bipartite(&g));
        assert!(!is_k_colorable(&g, 10));
        assert_eq!(chromatic_number(&g), usize::MAX);
    }

    #[test]
    fn complete_digraphs() {
        for m in 1..=5 {
            let k = generators::complete_digraph(m);
            assert_eq!(chromatic_number(&k), m);
            assert!(is_k_colorable(&k, m));
            assert!(!is_k_colorable(&k, m.saturating_sub(1)));
        }
    }

    #[test]
    fn coloring_is_proper() {
        let g = generators::wheel(5); // odd outer cycle: chromatic number 4
        let k = chromatic_number(&g);
        assert_eq!(k, 4);
        let coloring = k_coloring(&g, k).unwrap();
        let u = UGraph::underlying(&g);
        for (a, b) in u.edges() {
            assert_ne!(coloring[a as usize], coloring[b as usize]);
        }
    }

    #[test]
    fn bipartition_is_proper() {
        let g = Digraph::cycle(8);
        let classes = bipartition(&g).unwrap();
        let u = UGraph::underlying(&g);
        for (a, b) in u.edges() {
            assert_ne!(classes[a as usize], classes[b as usize]);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::new(0);
        assert!(is_bipartite(&g));
        assert_eq!(chromatic_number(&g), 0);
    }

    #[test]
    fn wheel_chromatic_numbers() {
        // wheel(n) = hub + C_n: odd outer cycle needs 4 colors, even 3.
        assert_eq!(chromatic_number(&generators::wheel(5)), 4);
        assert_eq!(chromatic_number(&generators::wheel(4)), 3);
        assert_eq!(chromatic_number(&generators::wheel(6)), 3);
    }
}
