//! Digraph generators used by the paper's constructions, tests and
//! benchmarks.

use crate::digraph::Digraph;
use cqapx_structures::Element;

/// The complete digraph `K⃗_m`: edges in both directions between every pair
/// of distinct nodes (no loops). `(K⃗_m)ᵘ = K_m`.
///
/// `K⃗_{k+1}` is the tableau of the trivial query `Q^triv_{k+1}` of
/// Section 5.2 of the paper: it has treewidth `k` and receives every
/// `(k+1)`-colorable digraph.
pub fn complete_digraph(m: usize) -> Digraph {
    let mut g = Digraph::new(m);
    for u in 0..m as Element {
        for v in 0..m as Element {
            if u != v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The symmetric version `G^↔` of an undirected edge list: each undirected
/// edge `{a, b}` becomes both `(a, b)` and `(b, a)` (the paper's Prop 5.12
/// reduction).
pub fn symmetric(n: usize, undirected_edges: &[(Element, Element)]) -> Digraph {
    let mut g = Digraph::new(n);
    for &(a, b) in undirected_edges {
        g.add_edge(a, b);
        g.add_edge(b, a);
    }
    g
}

/// The wheel: a directed cycle `0 → 1 → … → n-1 → 0` plus a hub (node `n`)
/// with symmetric edges to every rim node.
pub fn wheel(n: usize) -> Digraph {
    let mut g = Digraph::cycle(n);
    let hub = g.add_node();
    for v in 0..n as Element {
        g.add_edge(hub, v);
        g.add_edge(v, hub);
    }
    g
}

/// An `r × c` directed grid: edges right and down. Balanced and bipartite.
pub fn grid(r: usize, c: usize) -> Digraph {
    let mut g = Digraph::new(r * c);
    let id = |i: usize, j: usize| (i * c + j) as Element;
    for i in 0..r {
        for j in 0..c {
            if j + 1 < c {
                g.add_edge(id(i, j), id(i, j + 1));
            }
            if i + 1 < r {
                g.add_edge(id(i, j), id(i + 1, j));
            }
        }
    }
    g
}

/// An Erdős–Rényi style random digraph `G(n, p)` (no loops), from an
/// explicit RNG-free linear congruential stream so benchmarks are
/// deterministic without extra dependencies in this crate.
pub fn random_digraph(n: usize, p: f64, seed: u64) -> Digraph {
    let mut g = Digraph::new(n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..n as Element {
        for v in 0..n as Element {
            if u != v && next() < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The "zig-zag" balanced digraph of net length 0 with `2k` edges:
/// `0 → 1 ← 2 → 3 ← … `. Homomorphically equivalent to a single edge.
pub fn zigzag(k: usize) -> Digraph {
    let mut g = Digraph::new(2 * k + 1);
    for i in 0..2 * k {
        if i % 2 == 0 {
            g.add_edge(i as Element, (i + 1) as Element);
        } else {
            g.add_edge((i + 1) as Element, i as Element);
        }
    }
    g
}

/// The transitive tournament on `n` nodes: edge `(i, j)` for every `i < j`.
pub fn transitive_tournament(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for i in 0..n as Element {
        for j in (i + 1)..n as Element {
            g.add_edge(i, j);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance;
    use crate::coloring;

    #[test]
    fn complete_digraph_shape() {
        let k3 = complete_digraph(3);
        assert_eq!(k3.edge_count(), 6);
        assert!(!k3.has_loop());
    }

    #[test]
    fn grid_is_balanced_and_bipartite() {
        let g = grid(3, 4);
        assert!(balance::is_balanced(&g));
        assert!(coloring::is_bipartite(&g));
        assert_eq!(balance::height(&g), 5);
    }

    #[test]
    fn zigzag_equivalent_to_edge() {
        use cqapx_structures::HomProblem;
        let z = zigzag(3).to_structure();
        let e = Digraph::directed_path(1).to_structure();
        assert!(HomProblem::new(&z, &e).exists());
        assert!(HomProblem::new(&e, &z).exists());
    }

    #[test]
    fn random_digraph_deterministic() {
        let a = random_digraph(10, 0.3, 42);
        let b = random_digraph(10, 0.3, 42);
        assert_eq!(a, b);
        let c = random_digraph(10, 0.3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn tournament_acyclic_direction() {
        let t = transitive_tournament(4);
        assert_eq!(t.edge_count(), 6);
        assert!(balance::is_balanced(&Digraph::directed_path(1)));
        // tournaments have directed triangles? transitive ones do not have
        // directed cycles, but they are unbalanced as oriented cycles exist
        // with nonzero net length (0->1->2 and 0->2).
        assert!(!balance::is_balanced(&t));
    }
}
