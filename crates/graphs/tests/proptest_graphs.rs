//! Property-based tests for the graph algorithms.

use cqapx_graphs::{balance, coloring, treewidth, Digraph, UGraph};
use proptest::prelude::*;

fn digraph_strategy(max_n: usize, max_e: usize) -> impl Strategy<Value = Digraph> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_e)
            .prop_map(move |edges| Digraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Treewidth is monotone under edge addition and bounded by n−1.
    #[test]
    fn treewidth_monotone_and_bounded(g in digraph_strategy(7, 10)) {
        let u = UGraph::underlying(&g);
        let tw = treewidth::treewidth(&u);
        prop_assert!(tw <= u.n().saturating_sub(1));
        // adding an edge can only increase treewidth
        if u.n() >= 2 {
            let mut bigger = u.clone();
            bigger.add_edge(0, (u.n() - 1) as u32);
            prop_assert!(treewidth::treewidth(&bigger) >= tw);
        }
    }

    /// A witness decomposition validates and has the claimed width.
    #[test]
    fn decompositions_validate(g in digraph_strategy(7, 12)) {
        let u = UGraph::underlying(&g);
        let tw = treewidth::treewidth(&u);
        let td = treewidth::treewidth_at_most(&u, tw).expect("witness at exact width");
        td.validate(&u).unwrap();
        prop_assert!(td.width() <= tw);
        if tw > 0 {
            prop_assert!(treewidth::treewidth_at_most(&u, tw - 1).is_none());
        }
    }

    /// k-colorability agrees with homomorphism into K⃗_k (the definition
    /// the paper uses).
    #[test]
    fn coloring_agrees_with_hom(g in digraph_strategy(6, 10), k in 1usize..4) {
        use cqapx_structures::HomProblem;
        let colorable = coloring::is_k_colorable(&g, k);
        let kk = cqapx_graphs::generators::complete_digraph(k).to_structure();
        let via_hom = HomProblem::new(&g.to_structure(), &kk).exists();
        prop_assert_eq!(colorable, via_hom);
    }

    /// Forests have treewidth ≤ 1 and are 2-colorable (loop-free ones).
    #[test]
    fn forests_are_easy(n in 2usize..8, extra in 0usize..3) {
        // random tree by parent links + `extra` forward edges that keep
        // it a forest only when extra = 0
        let mut edges = Vec::new();
        for i in 1..n {
            edges.push(((i / 2) as u32, i as u32));
        }
        let g = Digraph::from_edges(n, &edges);
        let u = UGraph::underlying(&g);
        prop_assert!(u.is_forest());
        prop_assert!(treewidth::treewidth(&u) <= 1);
        prop_assert!(coloring::is_bipartite(&g));
        let _ = extra;
    }

    /// Balanced digraphs map into directed paths (Hell–Nešetřil), and
    /// level differences match edge orientation.
    #[test]
    fn balanced_iff_hom_to_path(g in digraph_strategy(6, 8)) {
        use cqapx_structures::HomProblem;
        let info = balance::levels(&g);
        let long_path = Digraph::directed_path(12).to_structure();
        let maps = HomProblem::new(&g.to_structure(), &long_path).exists();
        prop_assert_eq!(info.balanced, maps, "balanced ⇔ hom to long path");
        if info.balanced {
            for (u, v) in g.edges() {
                prop_assert_eq!(
                    info.levels[v as usize] - info.levels[u as usize],
                    1,
                    "levels rise by one along edges"
                );
            }
        }
    }

    /// Bipartiteness ⇔ hom to K⃗₂.
    #[test]
    fn bipartite_iff_hom_to_k2(g in digraph_strategy(6, 10)) {
        use cqapx_structures::HomProblem;
        let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]).to_structure();
        prop_assert_eq!(
            coloring::is_bipartite(&g),
            HomProblem::new(&g.to_structure(), &k2).exists()
        );
    }
}
