//! The DP-complete decision problems of Theorem 4.12, plus the source
//! problem of the reduction.
//!
//! * `Exact Four Colorability`: is `G` 4-colorable but not 3-colorable?
//!   (DP-complete, Rothe 2003.)
//! * `Exact Acyclic Homomorphism`: given a digraph `G` and an acyclic
//!   digraph `T`, is `G → T` while `G ↛ S` for every proper subgraph `S`
//!   of `T`?
//! * `Graph Acyclic Approximation`: is `G → T` with no acyclic `T'` such
//!   that `G → T' ⥛ T`? ("acyclic digraph" throughout means the
//!   underlying undirected graph is a forest, the `TW(1)` reading.)
//!
//! The procedures here are the natural exponential ones; Theorem 4.12
//! says nothing fundamentally faster exists (unless the polynomial
//! hierarchy collapses).

use cqapx_graphs::{coloring, Digraph, UGraph};
use cqapx_structures::{
    partition::for_each_partition, quotient, HomProblem, SearchBudget, Structure,
};
use std::ops::ControlFlow;

/// `Exact Four Colorability`: `G` is 4-colorable but not 3-colorable.
pub fn exact_four_colorability(g: &Digraph) -> bool {
    coloring::is_k_colorable(g, 4) && !coloring::is_k_colorable(g, 3)
}

/// Generalization: `G` is `k`-colorable but not `(k−1)`-colorable.
pub fn exact_k_colorability(g: &Digraph, k: usize) -> bool {
    coloring::is_k_colorable(g, k) && (k == 0 || !coloring::is_k_colorable(g, k - 1))
}

/// `Exact Acyclic Homomorphism`: `G → T` and `G ↛ S` for every proper
/// subgraph `S ⊊ T`.
///
/// It suffices to test the maximal proper subgraphs `T ∖ {e}` (a
/// homomorphism into any proper subgraph extends to one missing a single
/// edge), so the cost is `(|E(T)| + 1)` homomorphism searches.
///
/// # Panics
///
/// Panics when `T` is not acyclic (underlying forest).
pub fn exact_acyclic_homomorphism(g: &Digraph, t: &Digraph) -> bool {
    assert!(
        UGraph::underlying(t).is_forest(),
        "T must be an acyclic digraph"
    );
    let gs = g.to_structure();
    let ts = t.to_structure();
    if !HomProblem::new(&gs, &ts).exists() {
        return false;
    }
    for (u, v) in t.edges() {
        let mut sub = Digraph::new(t.n());
        for (a, b) in t.edges() {
            if (a, b) != (u, v) {
                sub.add_edge(a, b);
            }
        }
        if HomProblem::new(&gs, &sub.to_structure()).exists() {
            return false;
        }
    }
    true
}

/// `Graph Acyclic Approximation`: `G → T` and there is no acyclic `T'`
/// with `G → T' ⥛ T` (i.e. `T' → T` but `T ↛ T'`).
///
/// The witness `T'` can always be replaced by the image of the
/// homomorphism from `G`, i.e. by a **quotient** of `G` (the Theorem 4.1
/// argument), so the search space is the partitions of `V(G)` — feasible
/// for small `G`, exponential in general, as Theorem 4.12 predicts.
/// Returns `None` when the partition budget is exhausted first.
pub fn graph_acyclic_approximation(g: &Digraph, t: &Digraph, max_partitions: u64) -> Option<bool> {
    assert!(
        UGraph::underlying(t).is_forest(),
        "T must be an acyclic digraph"
    );
    let gs = g.to_structure();
    let ts = t.to_structure();
    if !HomProblem::new(&gs, &ts).exists() {
        return Some(false);
    }
    let mut budget = max_partitions;
    let mut beaten = false;
    let complete = for_each_partition(g.n(), |p| {
        if budget == 0 {
            return ControlFlow::Break(());
        }
        budget -= 1;
        let (q, _) = quotient::quotient(&gs, p);
        let qd = Digraph::from_structure(&q);
        if !UGraph::underlying(&qd).is_forest() {
            return ControlFlow::Continue(());
        }
        if HomProblem::new(&q, &ts).exists() && !HomProblem::new(&ts, &q).exists() {
            beaten = true;
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });
    if beaten {
        Some(false)
    } else if complete {
        Some(true)
    } else {
        None
    }
}

/// A hom-existence probe under a shared budget: `Some(answer)` when the
/// search finished, `None` when the budget ran dry first.
fn exists_budgeted(src: &Structure, tgt: &Structure, budget: &SearchBudget) -> Option<bool> {
    let mut found = false;
    let stats = HomProblem::new(src, tgt).budget(budget).for_each(|_| {
        found = true;
        ControlFlow::Break(())
    });
    if found {
        Some(true)
    } else if stats.budget_exhausted {
        None
    } else {
        Some(false)
    }
}

/// [`graph_acyclic_approximation`] under a shared [`SearchBudget`]: the
/// cooperative-cancellation variant. Every enumerated partition costs one
/// step and every inner hom search charges the same counter, so one
/// budget bounds the *whole* decision procedure — the same mechanism the
/// serving engine and the anytime approximation use. Returns `None` when
/// the budget runs dry before a definitive answer.
pub fn graph_acyclic_approximation_budgeted(
    g: &Digraph,
    t: &Digraph,
    budget: &SearchBudget,
) -> Option<bool> {
    assert!(
        UGraph::underlying(t).is_forest(),
        "T must be an acyclic digraph"
    );
    let gs = g.to_structure();
    let ts = t.to_structure();
    if !exists_budgeted(&gs, &ts, budget)? {
        return Some(false);
    }
    let mut beaten = false;
    let mut unknown = false;
    let complete = for_each_partition(g.n(), |p| {
        if !budget.charge(1) {
            unknown = true;
            return ControlFlow::Break(());
        }
        let (q, _) = quotient::quotient(&gs, p);
        let qd = Digraph::from_structure(&q);
        if !UGraph::underlying(&qd).is_forest() {
            return ControlFlow::Continue(());
        }
        match exists_budgeted(&q, &ts, budget) {
            None => {
                unknown = true;
                ControlFlow::Break(())
            }
            Some(false) => ControlFlow::Continue(()),
            Some(true) => match exists_budgeted(&ts, &q, budget) {
                None => {
                    unknown = true;
                    ControlFlow::Break(())
                }
                Some(true) => ControlFlow::Continue(()),
                Some(false) => {
                    beaten = true;
                    ControlFlow::Break(())
                }
            },
        }
    });
    if beaten {
        Some(false)
    } else if complete && !unknown {
        Some(true)
    } else {
        None
    }
}

/// Convenience: the structure of the disjoint union `G + H` used by the
/// Proposition 5.12 reduction (`G ↦ G^↔ + K⃗_{k+1}`).
pub fn prop_5_12_instance(undirected_edges: &[(u32, u32)], n: usize, k: usize) -> Structure {
    let g = cqapx_graphs::generators::symmetric(n, undirected_edges);
    let kk = cqapx_graphs::generators::complete_digraph(k + 1);
    g.disjoint_union(&kk).to_structure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::generators;

    #[test]
    fn exact_colorability() {
        // K4 is 4- but not 3-colorable.
        assert!(exact_four_colorability(&generators::complete_digraph(4)));
        // K3 is 3-colorable.
        assert!(!exact_four_colorability(&generators::complete_digraph(3)));
        // K5 is not 4-colorable.
        assert!(!exact_four_colorability(&generators::complete_digraph(5)));
        // Odd wheel W5 is exactly 4-chromatic.
        assert!(exact_four_colorability(&generators::wheel(5)));
    }

    #[test]
    fn exact_acyclic_hom_positive() {
        // C4 (bipartite, unbalanced) maps onto K2^<-> exactly: both edges
        // of K2 are used by any homomorphism.
        let c4 = Digraph::cycle(4);
        let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(exact_acyclic_homomorphism(&c4, &k2));
    }

    #[test]
    fn exact_acyclic_hom_negative() {
        // A single edge maps into K2^<-> but never exactly (one edge of
        // K2 suffices).
        let e = Digraph::from_edges(2, &[(0, 1)]);
        let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(!exact_acyclic_homomorphism(&e, &k2));
        // And a triangle does not map to K2 at all.
        let c3 = Digraph::cycle(3);
        assert!(!exact_acyclic_homomorphism(&c3, &k2));
    }

    #[test]
    fn acyclic_approximation_decision() {
        // K2^<-> is an acyclic approximation of C4…
        let c4 = Digraph::cycle(4);
        let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(graph_acyclic_approximation(&c4, &k2, 1 << 20), Some(true));
        // …but the single loop is not (K2 sits strictly between).
        let lp = Digraph::from_edges(1, &[(0, 0)]);
        assert_eq!(graph_acyclic_approximation(&c4, &lp, 1 << 20), Some(false));
        // For the directed path P4 and the tight source G_3:
        let g3 = crate::tight::g_k(3);
        let p4 = Digraph::directed_path(4);
        assert_eq!(graph_acyclic_approximation(&g3, &p4, 1 << 22), Some(true));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g3 = crate::tight::g_k(3);
        let p4 = Digraph::directed_path(4);
        assert_eq!(graph_acyclic_approximation(&g3, &p4, 3), None);
    }

    #[test]
    fn shared_budget_variant_agrees_and_cancels() {
        let c4 = Digraph::cycle(4);
        let k2 = Digraph::from_edges(2, &[(0, 1), (1, 0)]);
        let roomy = SearchBudget::new(1 << 20);
        assert_eq!(
            graph_acyclic_approximation_budgeted(&c4, &k2, &roomy),
            Some(true)
        );
        let lp = Digraph::from_edges(1, &[(0, 0)]);
        assert_eq!(
            graph_acyclic_approximation_budgeted(&c4, &lp, &SearchBudget::new(1 << 20)),
            Some(false)
        );
        // A cancelled budget yields an inconclusive (but never wrong)
        // verdict.
        let cancelled = SearchBudget::new(1 << 20);
        cancelled.cancel();
        assert_eq!(
            graph_acyclic_approximation_budgeted(&c4, &k2, &cancelled),
            None
        );
    }

    #[test]
    fn prop_512_reduction_shape() {
        // Triangle as undirected graph, k = 2: G^<-> + K3.
        let s = prop_5_12_instance(&[(0, 1), (1, 2), (2, 0)], 3, 2);
        assert_eq!(s.universe_size(), 6);
        // G 3-colorable ⇔ the instance is hom-equivalent to K3: here yes.
        let k3 = generators::complete_digraph(3).to_structure();
        assert!(HomProblem::new(&s, &k3).exists());
        assert!(HomProblem::new(&k3, &s).exists());
    }
}
