//! The oriented-path alphabet of the appendix.
//!
//! * `P_i = 0^{i+1} 1 0^{11−i}` for `1 ≤ i ≤ 9`: thirteen edges, net
//!   length 11, height 11; pairwise incomparable cores.
//! * `P_{ij} = 0^{i+1} 1 0 0^{j−i} 1 0^{11−j}`: maps into `P_i` and `P_j`
//!   and into no other `P_k` (Claim 8.1).
//! * `P_{ijk} = 0^{i+1} 1 0 0^{j−i} 1 0 0^{k−j} 1 0^{11−k}`: maps into
//!   exactly `P_i`, `P_j`, `P_k` (Claim 8.2).
//!
//! The mapping behaviour follows from Lemma 4.5 (level preservation): a
//! dip at height `h` can fold onto a dip at the same height, and `P_i`'s
//! only dip is at height `i + 1`.

use cqapx_graphs::OrientedPath;

/// `P_i = 0^{i+1} 1 0^{11−i}` for `1 ≤ i ≤ 9`.
pub fn p_i(i: usize) -> OrientedPath {
    assert!((1..=9).contains(&i), "P_i defined for 1 ≤ i ≤ 9");
    let s = format!("{}1{}", "0".repeat(i + 1), "0".repeat(11 - i));
    OrientedPath::parse(&s)
}

/// `P_{ij} = 0^{i+1} 1 0 0^{j−i} 1 0^{11−j}` for `1 ≤ i < j ≤ 9`.
pub fn p_ij(i: usize, j: usize) -> OrientedPath {
    assert!(1 <= i && i < j && j <= 9, "need 1 ≤ i < j ≤ 9");
    let s = format!(
        "{}10{}1{}",
        "0".repeat(i + 1),
        "0".repeat(j - i),
        "0".repeat(11 - j)
    );
    OrientedPath::parse(&s)
}

/// `P_{ijk} = 0^{i+1} 1 0 0^{j−i} 1 0 0^{k−j} 1 0^{11−k}` for
/// `1 ≤ i < j < k ≤ 9`.
pub fn p_ijk(i: usize, j: usize, k: usize) -> OrientedPath {
    assert!(1 <= i && i < j && j < k && k <= 9, "need 1 ≤ i < j < k ≤ 9");
    let s = format!(
        "{}10{}10{}1{}",
        "0".repeat(i + 1),
        "0".repeat(j - i),
        "0".repeat(k - j),
        "0".repeat(11 - k)
    );
    OrientedPath::parse(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::balance;
    use cqapx_structures::{core_ops, HomProblem, Pointed, Structure};

    fn s(p: &OrientedPath) -> Structure {
        p.to_digraph().to_structure()
    }

    #[test]
    fn p_i_shape() {
        for i in 1..=9 {
            let p = p_i(i);
            assert_eq!(p.len(), 13);
            assert_eq!(p.net_length(), 11);
            let info = balance::levels(&p.to_digraph());
            assert!(info.balanced);
            assert_eq!(info.height, 11);
        }
    }

    #[test]
    fn p_i_pairwise_incomparable_cores() {
        let paths: Vec<Structure> = (1..=9).map(|i| s(&p_i(i))).collect();
        for (i, a) in paths.iter().enumerate() {
            assert!(
                core_ops::is_core(&Pointed::boolean(a.clone())),
                "P_{} is a core",
                i + 1
            );
            for (j, b) in paths.iter().enumerate() {
                if i != j {
                    assert!(!HomProblem::new(a, b).exists(), "P_{} ↛ P_{}", i + 1, j + 1);
                }
            }
        }
    }

    #[test]
    fn claim_8_1_p_ij() {
        // Spot-check a representative selection (the full 36×9 matrix runs
        // in the bench harness).
        for &(i, j) in &[(1, 2), (3, 5), (7, 9), (2, 5), (3, 9), (5, 7)] {
            let pij = s(&p_ij(i, j));
            for k in 1..=9 {
                let pk = s(&p_i(k));
                let expected = k == i || k == j;
                assert_eq!(
                    HomProblem::new(&pij, &pk).exists(),
                    expected,
                    "P_{{{i},{j}}} → P_{k} should be {expected}"
                );
            }
        }
    }

    #[test]
    fn claim_8_2_p_ijk() {
        for &(i, j, k) in &[(1, 2, 5), (2, 4, 5), (3, 4, 5), (5, 7, 9), (2, 6, 9)] {
            let pijk = s(&p_ijk(i, j, k));
            for l in 1..=9 {
                let pl = s(&p_i(l));
                let expected = l == i || l == j || l == k;
                assert_eq!(
                    HomProblem::new(&pijk, &pl).exists(),
                    expected,
                    "P_{{{i},{j},{k}}} → P_{l} should be {expected}"
                );
            }
        }
    }

    #[test]
    fn pij_heights_match() {
        for &(i, j) in &[(1, 5), (3, 5), (5, 7)] {
            let info = balance::levels(&p_ij(i, j).to_digraph());
            assert!(info.balanced);
            assert_eq!(info.height, 11, "P_ij must share the P_i height");
            assert_eq!(p_ij(i, j).net_length(), 11);
        }
        for &(i, j, k) in &[(1, 2, 5), (2, 4, 5)] {
            let info = balance::levels(&p_ijk(i, j, k).to_digraph());
            assert!(info.balanced);
            assert_eq!(info.height, 11);
            assert_eq!(p_ijk(i, j, k).net_length(), 11);
        }
    }
}
