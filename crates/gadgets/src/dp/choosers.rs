//! Choosers: gadgets constraining the joint images of two nodes in `T`.
//!
//! The **extended choosers** are given explicitly in the text
//! (Claim 8.9 / Figures 16–17):
//!
//! * `S̃₂₁ = T₁₂ · T₁₂₅⁻¹ · T₃₄₅` — an extended (2,1)-chooser;
//! * `S̃₃₄ = T₁₂ · T₂₅⁻¹ · T₃₅ · T₁₅⁻¹ · T₂₄₅ · T₃₅⁻¹ · T₁₅` — an
//!   extended (3,4)-chooser;
//!
//! with `a` the terminal of the leading `T₁₂` copy and `b` the overall
//! terminal. An extended `(i,j)`-chooser satisfies: every homomorphism
//! into `T` maps `a` to `t₁` or `t₂`; `h(a) = t₁` forbids `h(b) = t_i`
//! and `h(a) = t₂` forbids `h(b) = t_j`; all other `(h(a), h(b))` pairs
//! over `{t₁ … t₄}` are realizable.
//!
//! The **plain choosers** `S₁₃`, `S₂₁`, `S₃₂` of the paper exist only in
//! Figure 15, whose wiring did not survive the text extraction (see
//! `DESIGN.md`). [`PairGadget`] is the interface they would implement,
//! and [`pair_table`] is the verification harness: it computes, for any
//! candidate gadget, the exact set of realizable `(h(a), h(b))` pairs
//! (sound by Lemma 4.5: all gadgets are balanced of height 25, so `a`,
//! `b` — level-25 nodes — can only land on `t₁ … t₄`).

use crate::dp::anchored::Anchored;
use crate::dp::big_t::BigT;
use crate::dp::connectors::{t_ij, t_ijk};
use cqapx_structures::{Element, HomProblem};

/// A digraph with two distinguished level-25 nodes `a`, `b` meant to be
/// glued onto color nodes of `T`.
#[derive(Debug, Clone)]
pub struct PairGadget {
    /// The gadget digraph.
    pub g: cqapx_graphs::Digraph,
    /// The first distinguished node.
    pub a: Element,
    /// The second distinguished node.
    pub b: Element,
}

/// `S̃₂₁ = T₁₂ · T₁₂₅⁻¹ · T₃₄₅` (Figure 16).
pub fn extended_chooser_21() -> PairGadget {
    let t12 = t_ij(1, 2);
    let t125_inv = t_ijk(1, 2, 5).inverse();
    let t345 = t_ijk(3, 4, 5);
    let (chain, junctions) = Anchored::chain(&[&t12, &t125_inv, &t345]);
    PairGadget {
        g: chain.g,
        a: junctions[0],
        b: chain.terminal,
    }
}

/// `S̃₃₄ = T₁₂ · T₂₅⁻¹ · T₃₅ · T₁₅⁻¹ · T₂₄₅ · T₃₅⁻¹ · T₁₅` (Figure 17).
pub fn extended_chooser_34() -> PairGadget {
    let t12 = t_ij(1, 2);
    let t25_inv = t_ij(2, 5).inverse();
    let t35 = t_ij(3, 5);
    let t15_inv = t_ij(1, 5).inverse();
    let t245 = t_ijk(2, 4, 5);
    let t35_inv = t_ij(3, 5).inverse();
    let t15 = t_ij(1, 5);
    let (chain, junctions) =
        Anchored::chain(&[&t12, &t25_inv, &t35, &t15_inv, &t245, &t35_inv, &t15]);
    PairGadget {
        g: chain.g,
        a: junctions[0],
        b: chain.terminal,
    }
}

/// Computes the exact set of realizable `(h(a), h(b))` color pairs of a
/// gadget against `T`: entry `[i][j]` is `true` when some homomorphism
/// maps `a ↦ t_{i+1}` and `b ↦ t_{j+1}`.
///
/// By Lemma 4.5 (both sides balanced, equal height 25) every homomorphism
/// maps `a` and `b` onto level-25 nodes of `T`, which are exactly
/// `t₁ … t₄`; the 16 pinned searches below therefore cover all cases.
pub fn pair_table(gadget: &PairGadget, t: &BigT) -> [[bool; 4]; 4] {
    let src = gadget.g.to_structure();
    let tgt = t.g.to_structure();
    let mut table = [[false; 4]; 4];
    for (i, &ti) in t.t.iter().enumerate() {
        // Quick reject: can a land on t_i at all?
        if !HomProblem::new(&src, &tgt).pin(gadget.a, ti).exists() {
            continue;
        }
        for (j, &tj) in t.t.iter().enumerate() {
            table[i][j] = HomProblem::new(&src, &tgt)
                .pin(gadget.a, ti)
                .pin(gadget.b, tj)
                .exists();
        }
    }
    table
}

/// The expected pair table of an extended `(i, j)`-chooser: `a ∈ {t₁,t₂}`;
/// `(t₁, t_i)` and `(t₂, t_j)` forbidden; everything else allowed.
pub fn expected_extended_table(i: usize, j: usize) -> [[bool; 4]; 4] {
    let mut table = [[false; 4]; 4];
    for (b, row) in table.iter_mut().enumerate().take(2) {
        for (c, cell) in row.iter_mut().enumerate() {
            *cell = !((b == 0 && c == i - 1) || (b == 1 && c == j - 1));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::big_t::big_t;
    use cqapx_graphs::balance;

    #[test]
    fn extended_choosers_are_balanced_height_25() {
        for (g, name) in [
            (extended_chooser_21(), "S~21"),
            (extended_chooser_34(), "S~34"),
        ] {
            let info = balance::levels(&g.g);
            assert!(info.balanced, "{name} balanced");
            assert_eq!(info.height, 25, "{name} height");
            assert_eq!(info.levels[g.a as usize], 25, "{name}: a at level 25");
            assert_eq!(info.levels[g.b as usize], 25, "{name}: b at level 25");
        }
    }

    #[test]
    fn claim_8_9_extended_chooser_21_table() {
        let t = big_t();
        let table = pair_table(&extended_chooser_21(), &t);
        assert_eq!(table, expected_extended_table(2, 1), "S̃₂₁ pair table");
    }

    #[test]
    fn claim_8_9_extended_chooser_34_table() {
        let t = big_t();
        let table = pair_table(&extended_chooser_34(), &t);
        assert_eq!(table, expected_extended_table(3, 4), "S̃₃₄ pair table");
    }
}
