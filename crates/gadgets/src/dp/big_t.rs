//! The target digraph `T` of Figure 14.
//!
//! `T` is the disjoint union of the four branches `T_i · T₅⁻¹`
//! (`1 ≤ i ≤ 4`) with all branch-initial nodes identified into the hub
//! `v`. Its level-25 nodes are exactly the four junctions
//! `t_i = y_i ~ y₅`, and its level-0 nodes are `v` and the four free ends
//! `u_i` (the `x₅` of each branch).

use crate::dp::qstar::{t_5, t_i};
use cqapx_graphs::Digraph;
use cqapx_structures::Element;

/// `T` with its distinguished nodes.
#[derive(Debug, Clone)]
pub struct BigT {
    /// The digraph (a tree; 657 nodes).
    pub g: Digraph,
    /// The hub `v` (level 0).
    pub v: Element,
    /// The color nodes `t₁ … t₄` (level 25).
    pub t: [Element; 4],
    /// The free branch ends `u₁ … u₄` (level 0).
    pub u: [Element; 4],
}

/// Builds `T`.
pub fn big_t() -> BigT {
    let t5_inv = t_5().inverse();
    let mut g = Digraph::new(1);
    let v = 0;
    let mut t_nodes = [0; 4];
    let mut u_nodes = [0; 4];
    for i in 1..=4usize {
        let branch_ti = t_i(i);
        // Glue T_i with its initial at v.
        let identify: Vec<Option<Element>> = (0..branch_ti.g.n() as Element)
            .map(|x| {
                if x == branch_ti.initial {
                    Some(v)
                } else {
                    None
                }
            })
            .collect();
        let placed = g.glue(&branch_ti.g, &identify);
        let yi = placed[branch_ti.terminal as usize];
        // Glue T5^{-1} with its initial (= y5) at y_i.
        let identify5: Vec<Option<Element>> = (0..t5_inv.g.n() as Element)
            .map(|x| if x == t5_inv.initial { Some(yi) } else { None })
            .collect();
        let placed5 = g.glue(&t5_inv.g, &identify5);
        t_nodes[i - 1] = yi;
        u_nodes[i - 1] = placed5[t5_inv.terminal as usize];
    }
    BigT {
        g,
        v,
        t: t_nodes,
        u: u_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::{balance, UGraph};

    #[test]
    fn big_t_shape() {
        let t = big_t();
        assert!(UGraph::underlying(&t.g).is_forest(), "T is a tree");
        let info = balance::levels(&t.g);
        assert!(info.balanced);
        assert_eq!(info.height, 25);
        // Level-25 nodes are exactly t1..t4.
        let tops: Vec<Element> = (0..t.g.n() as Element)
            .filter(|&x| info.levels[x as usize] == 25)
            .collect();
        let mut expected = t.t.to_vec();
        expected.sort_unstable();
        assert_eq!(tops, expected);
        // Level-0 nodes are v and u1..u4.
        let bottoms: Vec<Element> = (0..t.g.n() as Element)
            .filter(|&x| info.levels[x as usize] == 0)
            .collect();
        let mut expected = vec![t.v];
        expected.extend(t.u);
        expected.sort_unstable();
        assert_eq!(bottoms, expected);
    }

    #[test]
    fn big_t_is_connected() {
        let t = big_t();
        let (n, _) = t.g.weak_components();
        assert_eq!(n, 1);
    }
}
