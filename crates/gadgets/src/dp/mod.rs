//! The Theorem 4.12 (DP-completeness) gadgetry — the paper's appendix,
//! Figures 6–19.
//!
//! The reduction is from `Exact Four Colorability` to
//! `Graph Acyclic Approximation`. Its raw material is a family of
//! oriented paths of equal net length 11 and height 11 that are pairwise
//! incomparable cores (`P₁ … P₉`), "folding" paths `P_{ij}`, `P_{ijk}`
//! that map exactly into chosen subsets of them, a balanced tree `Q*`
//! whose acyclic folds `T₁ … T₄` are the four "colors", the auxiliary
//! `T₅`, connector trees `T_{ij}`, `T_{ijk}`, the big target `T`
//! (Figure 14), and chooser gadgets assembled from the connectors.
//!
//! Everything specified in the *text* of the appendix is built here and
//! machine-verified in tests; the plain choosers of Figure 15 exist only
//! as a lost figure and are substituted per `DESIGN.md` (the
//! [`choosers`] module documents the interface and the verification
//! harness for any candidate implementation).

pub mod anchored;
pub mod big_t;
pub mod choosers;
pub mod connectors;
pub mod core_forcing;
pub mod paths;
pub mod qstar;

pub use anchored::Anchored;
pub use big_t::{big_t, BigT};
pub use connectors::{t_ij, t_ijk};
pub use paths::{p_i, p_ij, p_ijk};
pub use qstar::{q_star, t_5, t_i, QStar};
