//! The connector trees `T_{ij}` (Claim 8.5) and `T_{ijk}` (Claim 8.6).
//!
//! All share the spine `P` (`p₁ → P₁ → P₈ → p₂`); a folding path is
//! grafted onto the spine:
//!
//! * `T_{ij}`: graft `X_{ij}` by its **terminal** at `P₁`'s terminal,
//!   where `X₁₅ = P₇₉`, `X₂₅ = P₅₉`, `X₃₅ = P₃₉`, `X₁₂ = P₅₇`,
//!   `X₁₃ = P₃₇`, `X₂₃ = P₃₅` (Figure 12);
//! * `T₁₂₅`: graft `P₅₇₉` by its terminal at `P₁`'s terminal;
//!   `T₂₄₅`/`T₃₄₅`: graft `X₂₄₅ = P₂₆₉` / `X₃₄₅ = P₂₄₉` by its
//!   **initial** at `P₈`'s initial (Figure 13).
//!
//! The claims: `T_S → T_k` exactly for `k ∈ S` (with `T₁ … T₅` from
//! [`crate::dp::qstar`]) — machine-verified in the tests below.

use crate::dp::anchored::Anchored;
use crate::dp::paths::{p_i, p_ij, p_ijk};
use cqapx_graphs::{Digraph, OrientedPath};
use cqapx_structures::Element;

/// The spine `P`: `p₁ → P₁ → junction → P₈ → p₂`. Returns the anchored
/// digraph plus `(P₁ terminal, P₈ initial)`.
fn spine() -> (Anchored, Element, Element) {
    let mut g = Digraph::new(2);
    let (pp1, pp2) = (0, 1);
    let p1_init = g.add_node();
    g.add_edge(pp1, p1_init);
    let p1_term = g.add_node();
    p_i(1).glue_into(&mut g, p1_init, p1_term);
    let p8_init = g.add_node();
    g.add_edge(p1_term, p8_init);
    let p8_term = g.add_node();
    p_i(8).glue_into(&mut g, p8_init, p8_term);
    g.add_edge(p8_term, pp2);
    (Anchored::new(g, pp1, pp2), p1_term, p8_init)
}

fn graft_at_terminal(base: &mut Digraph, x: &OrientedPath, at: Element) {
    let s = base.add_node();
    x.glue_into(base, s, at);
}

fn graft_at_initial(base: &mut Digraph, x: &OrientedPath, at: Element) {
    let t = base.add_node();
    x.glue_into(base, at, t);
}

/// `T_{ij}` for `(i,j) ∈ {(1,5), (2,5), (3,5), (1,2), (1,3), (2,3)}`.
pub fn t_ij(i: usize, j: usize) -> Anchored {
    let x = match (i, j) {
        (1, 5) => p_ij(7, 9),
        (2, 5) => p_ij(5, 9),
        (3, 5) => p_ij(3, 9),
        (1, 2) => p_ij(5, 7),
        (1, 3) => p_ij(3, 7),
        (2, 3) => p_ij(3, 5),
        _ => panic!("T_ij defined for (1,5),(2,5),(3,5),(1,2),(1,3),(2,3)"),
    };
    let (mut a, p1_term, _) = spine();
    graft_at_terminal(&mut a.g, &x, p1_term);
    a
}

/// `T_{ijk}` for `(i,j,k) ∈ {(1,2,5), (2,4,5), (3,4,5)}`.
pub fn t_ijk(i: usize, j: usize, k: usize) -> Anchored {
    let (mut a, p1_term, p8_init) = spine();
    match (i, j, k) {
        (1, 2, 5) => graft_at_terminal(&mut a.g, &p_ijk(5, 7, 9), p1_term),
        (2, 4, 5) => graft_at_initial(&mut a.g, &p_ijk(2, 6, 9), p8_init),
        (3, 4, 5) => graft_at_initial(&mut a.g, &p_ijk(2, 4, 9), p8_init),
        _ => panic!("T_ijk defined for (1,2,5),(2,4,5),(3,4,5)"),
    }
    a
}

/// The five targets `T₁ … T₅` as structures (test/verification helper).
pub fn targets() -> Vec<cqapx_structures::Structure> {
    (1..=5)
        .map(|i| {
            if i == 5 {
                crate::dp::qstar::t_5().g.to_structure()
            } else {
                crate::dp::qstar::t_i(i).g.to_structure()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::{balance, UGraph};
    use cqapx_structures::HomProblem;

    #[test]
    fn connector_shapes() {
        for &(i, j) in &[(1, 5), (2, 5), (3, 5), (1, 2), (1, 3), (2, 3)] {
            let t = t_ij(i, j);
            assert!(UGraph::underlying(&t.g).is_forest());
            let info = balance::levels(&t.g);
            assert!(info.balanced);
            assert_eq!(info.height, 25);
            assert_eq!(info.levels[t.initial as usize], 0);
            assert_eq!(info.levels[t.terminal as usize], 25);
        }
        for &(i, j, k) in &[(1, 2, 5), (2, 4, 5), (3, 4, 5)] {
            let t = t_ijk(i, j, k);
            assert!(UGraph::underlying(&t.g).is_forest());
            assert_eq!(balance::height(&t.g), 25);
        }
    }

    #[test]
    fn claim_8_5_t_ij_mapping_table() {
        let tg = targets();
        for &(i, j) in &[(1, 5), (2, 5), (3, 5), (1, 2), (1, 3), (2, 3)] {
            let tij = t_ij(i, j).g.to_structure();
            for k in 1..=5usize {
                let expected = k == i || k == j;
                assert_eq!(
                    HomProblem::new(&tij, &tg[k - 1]).exists(),
                    expected,
                    "T_{{{i}{j}}} → T_{k} should be {expected}"
                );
            }
        }
    }

    #[test]
    fn claim_8_6_t_ijk_mapping_table() {
        let tg = targets();
        for &(i, j, k) in &[(1, 2, 5), (2, 4, 5), (3, 4, 5)] {
            let tijk = t_ijk(i, j, k).g.to_structure();
            for l in 1..=5usize {
                let expected = l == i || l == j || l == k;
                assert_eq!(
                    HomProblem::new(&tijk, &tg[l - 1]).exists(),
                    expected,
                    "T_{{{i}{j}{k}}} → T_{l} should be {expected}"
                );
            }
        }
    }
}
