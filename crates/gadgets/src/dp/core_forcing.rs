//! The core-forcing gadgets of the appendix's final construction
//! (Figures 21–22): the oriented paths `W_n = 000(10)^n 0` and their
//! marked variants `W_n^k`.
//!
//! To make the reduction `φ(G)` a *core* (as Theorem 4.12's strengthened
//! statement requires), the appendix attaches to the `k`-th vertex of `G`
//! a gadget `S_n^k` built around `W_n^k` — `W_n` plus one extra edge
//! `z_k → x_k` pointing at the `k`-th "tooth". Claim 8.16: for each `n`,
//! the digraphs `W_n^k` (`1 ≤ k ≤ n`) are pairwise incomparable cores —
//! the marker's position is homomorphism-detectable, which pins every
//! vertex of `φ̃(G)` in place. (The surrounding `S_n^k` exists only in
//! Figure 23, which did not survive extraction; `W_n^k` and its claim are
//! textual and verified here.)

use cqapx_graphs::{Digraph, OrientedPath};
use cqapx_structures::Element;

/// Anchor nodes of `W_n` (Figure 21).
#[derive(Debug, Clone)]
pub struct WPath {
    /// The digraph.
    pub g: Digraph,
    /// The spine start `a` (level 0).
    pub a: Element,
    /// The apex `e` (level 4, the terminal node).
    pub e: Element,
    /// The valley nodes `x₁ … x_n` (level 2).
    pub x: Vec<Element>,
    /// The peak nodes `y₁ … y_n` (level 3).
    pub y: Vec<Element>,
}

/// `W_n = 000(10)^n 0`: a rising 3-path, `n` teeth oscillating between
/// levels 3 and 2, and a final rise to level 4.
pub fn w_n(n: usize) -> WPath {
    assert!(n >= 1);
    let mut s = String::from("000");
    for _ in 0..n {
        s.push_str("10");
    }
    s.push('0');
    let p = OrientedPath::parse(&s);
    let g = p.to_digraph();
    // Node i of the path digraph is position i along the spine:
    // a=0, b=1, c=2, d=3, then x_i = 3 + 2i - 1, y_i = 3 + 2i.
    let x: Vec<Element> = (1..=n).map(|i| (2 + 2 * i) as Element).collect();
    let y: Vec<Element> = (1..=n).map(|i| (3 + 2 * i) as Element).collect();
    let e = (p.len()) as Element;
    WPath { g, a: 0, e, x, y }
}

/// `W_n^k` (Figure 22): `W_n` plus a fresh node `z_k` with the marker
/// edge `z_k → x_k`.
pub fn w_n_k(n: usize, k: usize) -> WPath {
    assert!((1..=n).contains(&k), "need 1 ≤ k ≤ n");
    let mut w = w_n(n);
    let z = w.g.add_node();
    w.g.add_edge(z, w.x[k - 1]);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::balance;
    use cqapx_structures::{core_ops, HomProblem, Pointed};

    #[test]
    fn w_n_shape() {
        for n in 1..=4 {
            let w = w_n(n);
            let info = balance::levels(&w.g);
            assert!(info.balanced);
            assert_eq!(info.height, 4, "hg(W_n) = 4");
            assert_eq!(info.levels[w.a as usize], 0);
            assert_eq!(info.levels[w.e as usize], 4);
            for &xi in &w.x {
                assert_eq!(info.levels[xi as usize], 2, "valleys at level 2");
            }
            for &yi in &w.y {
                assert_eq!(info.levels[yi as usize], 3, "peaks at level 3");
            }
        }
    }

    #[test]
    fn w_n_k_marker_at_level_1() {
        let w = w_n_k(5, 2);
        let info = balance::levels(&w.g);
        assert!(info.balanced);
        assert_eq!(info.height, 4);
        // the marker z sits one below its valley
        let z = (w.g.n() - 1) as Element;
        assert_eq!(info.levels[z as usize], 1);
    }

    #[test]
    fn claim_8_16_pairwise_incomparable_cores() {
        // For each n, the W_n^k (1 ≤ k ≤ n) are incomparable cores.
        for n in [3usize, 5] {
            let family: Vec<_> = (1..=n).map(|k| w_n_k(n, k).g.to_structure()).collect();
            for (i, a) in family.iter().enumerate() {
                assert!(
                    core_ops::is_core(&Pointed::boolean(a.clone())),
                    "W_{n}^{} is a core",
                    i + 1
                );
                for (j, b) in family.iter().enumerate() {
                    if i != j {
                        assert!(
                            !HomProblem::new(a, b).exists(),
                            "W_{n}^{} ↛ W_{n}^{}",
                            i + 1,
                            j + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plain_w_n_is_not_a_core_obstacle() {
        // W_n without a marker folds: W_n → W_1 (all teeth collapse).
        let w5 = w_n(5).g.to_structure();
        let w1 = w_n(1).g.to_structure();
        assert!(HomProblem::new(&w5, &w1).exists());
    }
}
