//! The gadget `Q*` (Figure 7) and its acyclic folds `T₁ … T₄`, plus `T₅`
//! (Figures 9–11).
//!
//! `Q*` is the balanced 8-cycle `(a₁ … a₈)` of shape `01010101`, with a
//! copy of `P_i` attached to each `a_i` (odd `i`: `a_i` is the *terminal*
//! of `P_i`; even `i`: the *initial*), plus an entry node `x` feeding the
//! initial of `P₁`'s copy and an exit node `y` fed by the terminal of
//! `P₈`'s copy. It is balanced of height 25; `x` and `y` are its unique
//! level-0 / level-25 nodes.
//!
//! The folds identify opposite cycle nodes, breaking the 8-cycle into a
//! path: `T₁: a₁~a₇, a₂~a₆, a₃~a₅`; `T₂: a₈~a₆, a₁~a₅, a₂~a₄`;
//! `T₃: a₇~a₅, a₈~a₄, a₁~a₃`; `T₄: a₆~a₄, a₇~a₃, a₈~a₂`. They are
//! pairwise incomparable cores, each receives `Q*` by a *unique*
//! homomorphism (Claim 8.3), and each is an acyclic approximation of `Q*`
//! (Claim 8.4).

use crate::dp::anchored::Anchored;
use crate::dp::paths::p_i;
use cqapx_graphs::Digraph;
use cqapx_structures::Element;

/// `Q*` with its anchor nodes.
#[derive(Debug, Clone)]
pub struct QStar {
    /// The digraph.
    pub g: Digraph,
    /// The entry node `x` (level 0).
    pub x: Element,
    /// The exit node `y` (level 25).
    pub y: Element,
    /// The cycle nodes `a₁ … a₈` (index 0 holds `a₁`).
    pub a: [Element; 8],
}

/// Builds `Q*` (Figure 7).
pub fn q_star() -> QStar {
    let mut g = Digraph::new(8);
    let a: [Element; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
    // Balanced cycle 01010101: symbol t ∈ {0,1} orients the edge between
    // a_{t+1} and a_{t+2} (indices mod 8).
    for (idx, ch) in "01010101".chars().enumerate() {
        let u = a[idx];
        let v = a[(idx + 1) % 8];
        match ch {
            '0' => g.add_edge(u, v),
            _ => g.add_edge(v, u),
        }
    }
    // Attach P_i copies.
    let mut free_ends: [Element; 8] = [0; 8];
    for i in 1..=8usize {
        let p = p_i(i);
        if i % 2 == 1 {
            // a_i is the terminal of P_i: glue from a fresh initial.
            let s = g.add_node();
            p.glue_into(&mut g, s, a[i - 1]);
            free_ends[i - 1] = s;
        } else {
            let t = g.add_node();
            p.glue_into(&mut g, a[i - 1], t);
            free_ends[i - 1] = t;
        }
    }
    // x and y.
    let x = g.add_node();
    g.add_edge(x, free_ends[0]);
    let y = g.add_node();
    g.add_edge(free_ends[7], y);
    QStar { g, x, y, a }
}

/// The identification schedule of `T_i` (pairs of cycle indices, 1-based).
fn fold_pairs(i: usize) -> [(usize, usize); 3] {
    match i {
        1 => [(1, 7), (2, 6), (3, 5)],
        2 => [(8, 6), (1, 5), (2, 4)],
        3 => [(7, 5), (8, 4), (1, 3)],
        4 => [(6, 4), (7, 3), (8, 2)],
        _ => panic!("T_i defined for 1 ≤ i ≤ 4"),
    }
}

/// `T_i` for `1 ≤ i ≤ 4`: the corresponding fold of `Q*`, anchored at
/// (the images of) `x` and `y`.
pub fn t_i(i: usize) -> Anchored {
    let q = q_star();
    let mut g = q.g;
    let mut track: Vec<Element> = (0..g.n() as Element).collect();
    for (p, q2) in fold_pairs(i) {
        let u = track[q.a[p - 1] as usize];
        let v = track[q.a[q2 - 1] as usize];
        let (next, map) = g.identify(u, v);
        for slot in track.iter_mut() {
            *slot = map[*slot as usize];
        }
        g = next;
    }
    Anchored::new(g, track[q.x as usize], track[q.y as usize])
}

/// `T₅` (Figure 11), anchored at `x₅` and `y₅`.
pub fn t_5() -> Anchored {
    let mut g = Digraph::new(2);
    let (x5, y5) = (0, 1);
    // spine: x5 -> P1 -> junction -> P8 -> y5
    let p1_init = g.add_node();
    g.add_edge(x5, p1_init);
    let p1_term = g.add_node();
    p_i(1).glue_into(&mut g, p1_init, p1_term);
    let p8_init = g.add_node();
    g.add_edge(p1_term, p8_init);
    let p8_term = g.add_node();
    p_i(8).glue_into(&mut g, p8_init, p8_term);
    g.add_edge(p8_term, y5);
    // P9 copy with terminal at P1's terminal.
    let s = g.add_node();
    p_i(9).glue_into(&mut g, s, p1_term);
    // P9 copy with initial at P8's initial.
    let t = g.add_node();
    p_i(9).glue_into(&mut g, p8_init, t);
    Anchored::new(g, x5, y5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::{balance, UGraph};
    use cqapx_structures::{core_ops, HomProblem, Pointed};
    use std::ops::ControlFlow;

    #[test]
    fn q_star_shape() {
        let q = q_star();
        assert_eq!(q.g.n(), 114);
        let info = balance::levels(&q.g);
        assert!(info.balanced, "Q* is balanced");
        assert_eq!(info.height, 25, "hg(Q*) = 25");
        assert_eq!(info.levels[q.x as usize], 0);
        assert_eq!(info.levels[q.y as usize], 25);
        // x and y are the unique extremal nodes.
        let zeros = info.levels.iter().filter(|&&l| l == 0).count();
        let tops = info.levels.iter().filter(|&&l| l == 25).count();
        assert_eq!((zeros, tops), (1, 1));
        // Q* itself is cyclic (the 8-cycle survives).
        assert!(!UGraph::underlying(&q.g).is_forest());
    }

    #[test]
    fn t_i_are_acyclic_height_25() {
        for i in 1..=4 {
            let t = t_i(i);
            assert!(
                UGraph::underlying(&t.g).is_forest(),
                "T_{i} must be acyclic"
            );
            let info = balance::levels(&t.g);
            assert!(info.balanced);
            assert_eq!(info.height, 25, "hg(T_{i}) = 25");
            assert_eq!(info.levels[t.initial as usize], 0);
            assert_eq!(info.levels[t.terminal as usize], 25);
        }
        let t5 = t_5();
        assert!(UGraph::underlying(&t5.g).is_forest());
        let info = balance::levels(&t5.g);
        assert_eq!(info.height, 25);
    }

    #[test]
    fn q_star_maps_to_each_fold() {
        let q = q_star().g.to_structure();
        for i in 1..=4 {
            let t = t_i(i).g.to_structure();
            assert!(HomProblem::new(&q, &t).exists(), "Q* → T_{i}");
        }
    }

    #[test]
    fn claim_8_3_unique_homomorphism() {
        // The homomorphism Q* → T_i is unique.
        let q = q_star().g.to_structure();
        for i in 1..=4 {
            let t = t_i(i).g.to_structure();
            let mut count = 0u32;
            HomProblem::new(&q, &t).for_each(|_| {
                count += 1;
                if count > 1 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            assert_eq!(count, 1, "exactly one hom Q* → T_{i}");
        }
    }

    #[test]
    fn folds_pairwise_incomparable() {
        let ts: Vec<_> = (1..=5)
            .map(|i| {
                if i == 5 {
                    t_5().g.to_structure()
                } else {
                    t_i(i).g.to_structure()
                }
            })
            .collect();
        for (i, a) in ts.iter().enumerate() {
            for (j, b) in ts.iter().enumerate() {
                if i != j {
                    assert!(!HomProblem::new(a, b).exists(), "T_{} ↛ T_{}", i + 1, j + 1);
                }
            }
        }
    }

    #[test]
    fn t1_is_core() {
        // Representative core check (the others run in the bench harness;
        // each is ~111 retract searches).
        let t1 = t_i(1).g.to_structure();
        assert!(core_ops::is_core(&Pointed::boolean(t1)));
    }

    #[test]
    fn q_star_does_not_map_to_t5() {
        let q = q_star().g.to_structure();
        let t5 = t_5().g.to_structure();
        assert!(!HomProblem::new(&q, &t5).exists(), "Q* ↛ T₅");
    }
}
