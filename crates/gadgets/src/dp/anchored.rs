//! Digraphs with initial and terminal anchors, and their concatenation
//! calculus (`G · H`, `G⁻¹`) from the appendix.

use cqapx_graphs::Digraph;
use cqapx_structures::Element;

/// A digraph with two distinguished nodes: an initial and a terminal one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchored {
    /// The underlying digraph.
    pub g: Digraph,
    /// The initial node.
    pub initial: Element,
    /// The terminal node.
    pub terminal: Element,
}

impl Anchored {
    /// Wraps a digraph with anchors.
    pub fn new(g: Digraph, initial: Element, terminal: Element) -> Self {
        assert!((initial as usize) < g.n() && (terminal as usize) < g.n());
        Anchored {
            g,
            initial,
            terminal,
        }
    }

    /// `G⁻¹`: same digraph, anchors swapped.
    pub fn inverse(&self) -> Anchored {
        Anchored {
            g: self.g.clone(),
            initial: self.terminal,
            terminal: self.initial,
        }
    }

    /// Concatenation `G · H`: disjoint union identifying `G`'s terminal
    /// with `H`'s initial. Returns the composite (anchors: `G`'s initial,
    /// `H`'s terminal) together with the placement of `H`'s nodes.
    pub fn concat(&self, other: &Anchored) -> (Anchored, Vec<Element>) {
        let mut g = self.g.clone();
        let identify: Vec<Option<Element>> = (0..other.g.n() as Element)
            .map(|v| {
                if v == other.initial {
                    Some(self.terminal)
                } else {
                    None
                }
            })
            .collect();
        let placed = g.glue(&other.g, &identify);
        let composite = Anchored {
            g,
            initial: self.initial,
            terminal: placed[other.terminal as usize],
        };
        (composite, placed)
    }

    /// Chains a sequence of anchored digraphs: `a₁ · a₂ · … · a_m`.
    /// Returns the composite plus, for each stage, the junction node
    /// (where stage `i`'s terminal = stage `i+1`'s initial landed) — these
    /// are the `x₁, x₂, …` of Figures 16 and 17.
    pub fn chain(parts: &[&Anchored]) -> (Anchored, Vec<Element>) {
        assert!(!parts.is_empty());
        let mut acc = parts[0].clone();
        let mut junctions = Vec::new();
        for p in &parts[1..] {
            junctions.push(acc.terminal);
            let (next, _) = acc.concat(p);
            acc = next;
        }
        (acc, junctions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::{balance, OrientedPath};

    fn path(s: &str) -> Anchored {
        let p = OrientedPath::parse(s);
        let n = p.len() as Element;
        Anchored::new(p.to_digraph(), 0, n)
    }

    #[test]
    fn concat_glues_at_junction() {
        let a = path("00");
        let b = path("01");
        let (c, _) = a.concat(&b);
        assert_eq!(c.g.n(), 5);
        assert_eq!(c.g.edge_count(), 4);
        assert_eq!(c.initial, 0);
        // net length of composite = 2 + 0
        let info = balance::levels(&c.g);
        assert_eq!(
            info.levels[c.terminal as usize] - info.levels[c.initial as usize],
            2
        );
    }

    #[test]
    fn inverse_swaps() {
        let a = path("001");
        let inv = a.inverse();
        assert_eq!(inv.initial, a.terminal);
        assert_eq!(inv.terminal, a.initial);
        assert_eq!(inv.inverse(), a);
    }

    #[test]
    fn chain_reports_junctions() {
        let a = path("0");
        let (c, junctions) = Anchored::chain(&[&a, &a.inverse(), &a]);
        assert_eq!(junctions.len(), 2);
        assert_eq!(c.g.n(), 4);
        // shape: 0 -> 1 <- 2 -> 3 after gluing? chain: edge up, edge down,
        // edge up: zigzag of 3 edges.
        assert_eq!(c.g.edge_count(), 3);
        let info = balance::levels(&c.g);
        assert!(info.balanced);
        assert_eq!(info.height, 1);
    }
}
