//! The paper's constructions, implemented as reusable gadget builders.
//!
//! These are the objects behind the lower bounds and examples:
//!
//! * [`prop44`] — Figures 3–5: the family `(Q_n)` with exponentially many
//!   non-equivalent `TW(1)`-approximations (`P₁ = 001000`, `P₂ = 000100`,
//!   the digraph `D`, its folds `D_ac`/`D_bd`, the chains `G_n`, `G_n^s`);
//! * [`tight`] — Proposition 5.6 / Example 5.7: tight acyclic
//!   approximations (`G_k` vs the directed path `P_{k+1}`);
//! * [`dp`] — the appendix of Theorem 4.12 (Figures 6–19): the oriented
//!   paths `P_i = 0^{i+1} 1 0^{11−i}`, the folding paths `P_{ij}`,
//!   `P_{ijk}`, the balanced gadget `Q*`, its acyclic folds `T₁…T₄`, the
//!   auxiliary `T₅`, the connectors `T_{ij}`, `T_{ijk}`, the big target
//!   `T`, and the extended choosers `S̃₂₁`, `S̃₃₄`;
//! * [`decision`] — the decision problems the reduction targets:
//!   `Exact Acyclic Homomorphism` and `Graph Acyclic Approximation`
//!   (both DP-complete);
//! * [`paper_examples`] — the worked queries quoted in the paper
//!   (introduction, Examples 5.7 and 6.6, Propositions 5.9, 5.15).
//!
//! Everything that the paper states *in the text* about these gadgets is
//! machine-checked in this crate's tests with the homomorphism engine
//! (incomparability of cores, uniqueness of homomorphisms, the extended
//! chooser pair tables, levels and heights). The one component whose exact
//! wiring exists only in a lost figure (the plain choosers of Figure 15)
//! is replaced by a parameterized interface — see [`dp::choosers`] and the
//! substitution note in `DESIGN.md`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod decision;
pub mod dp;
pub mod paper_examples;
pub mod prop44;
pub mod tight;
