//! Proposition 5.6 / Example 5.7: tight acyclic approximations.
//!
//! `Q'` is a **tight** `C`-approximation of `Q` when additionally no CQ at
//! all (from any class) fits strictly between them. The family: `G_k` is
//! two directed `k`-paths `x₀…x_k`, `y₀…y_k` plus the rungs
//! `(x_i, y_{i+2})`; for `k ≥ 3`, `G_k → P⃗_{k+1}` and the pair forms a
//! *gap* in the homomorphism lattice (Nešetřil–Tardif duality), making the
//! `P⃗_{k+1}`-query a tight acyclic approximation of the `G_k`-query.

use cqapx_graphs::Digraph;
use cqapx_structures::Element;

/// The digraph `G_k` of Proposition 5.6 (`2k + 2` nodes, `3k − 1` edges).
pub fn g_k(k: usize) -> Digraph {
    assert!(k >= 2, "G_k needs k ≥ 2");
    let mut g = Digraph::new(2 * (k + 1));
    let x = |i: usize| i as Element;
    let y = |i: usize| (k + 1 + i) as Element;
    for i in 0..k {
        g.add_edge(x(i), x(i + 1));
        g.add_edge(y(i), y(i + 1));
    }
    for i in 0..=k.saturating_sub(2) {
        g.add_edge(x(i), y(i + 2));
    }
    g
}

/// The digraph of Example 5.7 whose unique acyclic approximation is the
/// path `P⃗₄`.
///
/// The example's *first* picture survives only as an unreadable figure in
/// the source text; its *second* digraph is given in prose — it is exactly
/// the tableau of the introduction's query
/// `Q₂() :- P₃(x,y,z,u), P₃(x',y',z',u'), E(x,z'), E(y,u')`, for which the
/// example states the same `P⃗₄` query is a **tight** acyclic
/// approximation. We build that one.
pub fn example_57() -> Digraph {
    // Two directed 3-paths x→y→z→u and x'→y'→z'→u', plus E(x,z'), E(y,u').
    let mut g = Digraph::new(8);
    // x=0, y=1, z=2, u=3, x'=4, y'=5, z'=6, u'=7
    let (zp, up) = (6, 7);
    for (a, b) in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)] {
        g.add_edge(a, b);
    }
    g.add_edge(0, zp);
    g.add_edge(1, up);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_core::{all_approximations, ApproxOptions, TwK};
    use cqapx_cq::{equivalent, parse_cq, query_from_tableau};
    use cqapx_graphs::{balance, coloring};
    use cqapx_structures::{HomProblem, Pointed};

    #[test]
    fn gk_maps_to_path() {
        // Property 1: G_k → P_{k+1}.
        for k in 3..=6 {
            let g = g_k(k).to_structure();
            let p = Digraph::directed_path(k + 1).to_structure();
            assert!(HomProblem::new(&g, &p).exists(), "G_{k} → P_{}", k + 1);
            // And not to the shorter path (G_k has a directed k-path and
            // rungs that stretch it).
            let shorter = Digraph::directed_path(k).to_structure();
            assert!(!HomProblem::new(&g, &shorter).exists());
        }
    }

    #[test]
    fn gk_is_bipartite_balanced_cyclic() {
        for k in 3..=5 {
            let g = g_k(k);
            assert!(coloring::is_bipartite(&g));
            assert!(balance::is_balanced(&g));
            assert!(!cqapx_graphs::UGraph::underlying(&g).is_forest());
        }
    }

    #[test]
    fn g3_unique_acyclic_approximation_is_p4() {
        // For k = 3 the query has 8 variables: exhaustive search feasible.
        let q = query_from_tableau(&Pointed::boolean(g_k(3).to_structure()));
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(rep.complete);
        assert_eq!(rep.approximations.len(), 1, "unique approximation");
        let p4 = query_from_tableau(&Pointed::boolean(Digraph::directed_path(4).to_structure()));
        assert!(equivalent(&rep.approximations[0], &p4));
    }

    #[test]
    fn example_57_unique_approximation_is_p4() {
        let d = example_57();
        assert!(coloring::is_bipartite(&d));
        assert!(balance::is_balanced(&d));
        let q = query_from_tableau(&Pointed::boolean(d.to_structure()));
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(rep.complete);
        assert_eq!(
            rep.approximations.len(),
            1,
            "got {:?}",
            rep.approximations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        );
        let p4 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e)").unwrap();
        assert!(equivalent(&rep.approximations[0], &p4));
    }

    #[test]
    fn no_quotient_strictly_between_g3_and_p4() {
        // Tightness within the (complete, by Thm 4.1) quotient witness
        // space: no quotient Q'' of G_3 with P4-query ⊂ Q'' ⊂ Q.
        use cqapx_structures::{order, partition::for_each_partition, quotient::quotient_pointed};
        use std::ops::ControlFlow;
        let g = Pointed::boolean(g_k(3).to_structure());
        let p4 = Pointed::boolean(Digraph::directed_path(4).to_structure());
        let n = g.structure.universe_size();
        for_each_partition(n, |p| {
            let (qt, _) = quotient_pointed(&g, p);
            // strictly between: T_G ⥛ qt ⥛ p4 — i.e. hom qt→p4 strictly,
            // and hom g→qt strictly.
            let below_p4 = order::hom_exists(&qt, &p4) && !order::hom_exists(&p4, &qt);
            let above_g = !order::hom_exists(&qt, &g);
            assert!(
                !(below_p4 && above_g),
                "no quotient strictly between G_3 and P_4"
            );
            ControlFlow::Continue(())
        });
    }
}
