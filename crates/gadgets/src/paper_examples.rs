//! The worked example queries quoted in the paper, as ready-made values.

use cqapx_cq::{parse_cq, ConjunctiveQuery};

/// Introduction: `Q₁() :- E(x,y), E(y,z), E(z,x)` (the directed
/// triangle; only trivial acyclic approximation).
pub fn intro_q1() -> ConjunctiveQuery {
    parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap()
}

/// Introduction: its trivial approximation `Q'₁() :- E(x,x)`.
pub fn intro_q1_approx() -> ConjunctiveQuery {
    parse_cq("Q() :- E(x,x)").unwrap()
}

/// Introduction: `Q₂() :- P₃(x,y,z,u), P₃(x',y',z',u'), E(x,z'), E(y,u')`
/// (bipartite balanced; nontrivial acyclic approximation).
pub fn intro_q2() -> ConjunctiveQuery {
    parse_cq("Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)")
        .unwrap()
}

/// Introduction: `Q'₂() :- P₄(x',x,y,z,u)` — the path-of-length-4 query.
pub fn intro_q2_approx() -> ConjunctiveQuery {
    parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,e)").unwrap()
}

/// Introduction, ternary variant of the triangle:
/// `Q() :- R(x,u,y), R(y,v,z), R(z,w,x)`.
pub fn intro_ternary() -> ConjunctiveQuery {
    parse_cq("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)").unwrap()
}

/// Introduction: its nontrivial acyclic approximation
/// `Q'() :- R(x,u,y), R(y,v,u), R(u,w,x)`.
pub fn intro_ternary_approx() -> ConjunctiveQuery {
    parse_cq("Q() :- R(x,u,y), R(y,v,u), R(u,w,x)").unwrap()
}

/// Theorem 5.1's second-case witness `Q₃`: the (bipartite, unbalanced)
/// oriented 4-cycle `E(x,y), E(y,z), E(z,u), E(x,u)`.
pub fn q3_unbalanced() -> ConjunctiveQuery {
    parse_cq("Q() :- E(x,y), E(y,z), E(z,u), E(x,u)").unwrap()
}

/// §5.1.2: the non-Boolean triangle `Q(x,y) :- E(x,y), E(y,z), E(z,x)`.
pub fn nonboolean_triangle() -> ConjunctiveQuery {
    parse_cq("Q(x, y) :- E(x,y), E(y,z), E(z,x)").unwrap()
}

/// §5.1.2: its acyclic approximation
/// `Q'(x,y) :- E(x,y), E(y,x), E(x,x)`.
pub fn nonboolean_triangle_approx() -> ConjunctiveQuery {
    parse_cq("Q(x, y) :- E(x,y), E(y,x), E(x,x)").unwrap()
}

/// Proposition 5.9's query `Q(x₁,x₂,x₃)` over the oriented 4-cycle: all
/// of its minimized acyclic approximations keep all 3 joins.
pub fn prop_5_9_query() -> ConjunctiveQuery {
    parse_cq("Q(x1, x2, x3) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)").unwrap()
}

/// Example 6.6: the ternary 3-cycle
/// `Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)`.
pub fn example_66() -> ConjunctiveQuery {
    parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)").unwrap()
}

/// Example 6.6's acyclic approximations `Q'₁, Q'₂, Q'₃` (fewer / equal /
/// more joins than `Q`).
pub fn example_66_approxes() -> [ConjunctiveQuery; 3] {
    [
        parse_cq("Q() :- R(x, y, x)").unwrap(),
        parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x2), R(x2,x6,x1)").unwrap(),
        parse_cq("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1), R(x1,x3,x5)").unwrap(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_core::{all_approximations, classes, Acyclic, ApproxOptions, TwK};
    use cqapx_cq::{contained_in, equivalent, tableau_of};

    #[test]
    fn intro_ternary_has_nontrivial_approximation() {
        let q = intro_ternary();
        let qp = intro_ternary_approx();
        assert!(contained_in(&qp, &q));
        assert!(classes::QueryClass::contains_tableau(
            &Acyclic,
            &tableau_of(&qp)
        ));
        let rep = all_approximations(&q, &Acyclic, &ApproxOptions::default());
        assert!(
            rep.approximations.iter().any(|a| equivalent(a, &qp)),
            "intro ternary approximation recovered; got {:?}",
            rep.approximations
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
        );
        // And it is nontrivial (more than one atom after minimization).
        assert!(qp.atom_count() > 1);
    }

    #[test]
    fn q3_has_only_the_trivial_bipartite_approximation() {
        let rep = all_approximations(&q3_unbalanced(), &TwK(1), &ApproxOptions::default());
        assert_eq!(rep.approximations.len(), 1);
        assert!(equivalent(
            &rep.approximations[0],
            &cqapx_core::trivial_bipartite_query()
        ));
    }

    #[test]
    fn prop_59_all_approximations_keep_joins() {
        let q = prop_5_9_query();
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(!rep.approximations.is_empty());
        for a in &rep.approximations {
            assert_eq!(
                a.join_count(),
                q.join_count(),
                "Prop 5.9: minimized acyclic approximation {a} keeps all joins"
            );
        }
    }

    #[test]
    fn nonboolean_triangle_approximation() {
        let q = nonboolean_triangle();
        let qp = nonboolean_triangle_approx();
        let rep = all_approximations(&q, &TwK(1), &ApproxOptions::default());
        assert!(rep.approximations.iter().any(|a| equivalent(a, &qp)));
    }
}
