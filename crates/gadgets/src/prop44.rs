//! Proposition 4.4: exponentially many non-equivalent
//! `TW(1)`-approximations (Figures 3–5).
//!
//! The construction: `P₁ = 001000` and `P₂ = 000100` are incomparable
//! cores of equal net length. The digraph `D` (Figure 3) wires four fresh
//! copies of them around the 4-node pattern
//! `E = {(a,b), (a,d), (c,b), (c,d)}`; identifying `a ~ c` gives `D_ac`,
//! identifying `b ~ d` gives `D_bd` — two incomparable acyclic cores
//! (Claim 4.6). Chaining `n` copies of `D` gives `G_n` (Figure 5); folding
//! each copy by a letter of `s ∈ {V, H}ⁿ` gives `G_n^s`, and the `2ⁿ`
//! queries `Q_n^s` are pairwise non-equivalent minimized
//! `TW(1)`-approximations of `Q_n` (Claims 4.7–4.9).

use cqapx_graphs::{Digraph, OrientedPath};
use cqapx_structures::Element;

/// `P₁ = 001000`.
pub fn p1() -> OrientedPath {
    OrientedPath::parse("001000")
}

/// `P₂ = 000100`.
pub fn p2() -> OrientedPath {
    OrientedPath::parse("000100")
}

/// Anchor nodes of one copy of the digraph `D` inside a larger digraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DAnchors {
    /// The four hub nodes of Figure 3.
    pub a: Element,
    /// Hub `b`.
    pub b: Element,
    /// Hub `c`.
    pub c: Element,
    /// Hub `d`.
    pub d: Element,
    /// Initial node of the copy of `P₁` whose terminal is `a` (the chain
    /// entry point of the copy).
    pub p1_into_a_initial: Element,
    /// Terminal node of the copy of `P₂` that starts at `d` (the chain
    /// exit point of the copy).
    pub p2_from_d_terminal: Element,
}

/// Glues a fresh copy of `D` into `g`, returning its anchors.
///
/// Per Figure 3: base edges `(a,b), (a,d), (c,b), (c,d)`; copies of `P₁`
/// and `P₂` *starting* at `b` and `d`; copies of `P₁` and `P₂` *ending*
/// at `a` and `c`.
pub fn glue_d(g: &mut Digraph) -> DAnchors {
    let a = g.add_node();
    let b = g.add_node();
    let c = g.add_node();
    let d = g.add_node();
    g.add_edge(a, b);
    g.add_edge(a, d);
    g.add_edge(c, b);
    g.add_edge(c, d);
    // P1 from b (identify initial with b) to a fresh terminal.
    let t1 = g.add_node();
    p1().glue_into(g, b, t1);
    // P2 from d to a fresh terminal.
    let t2 = g.add_node();
    p2().glue_into(g, d, t2);
    // P1 ending at a, fresh initial.
    let s1 = g.add_node();
    p1().glue_into(g, s1, a);
    // P2 ending at c, fresh initial.
    let s2 = g.add_node();
    p2().glue_into(g, s2, c);
    DAnchors {
        a,
        b,
        c,
        d,
        p1_into_a_initial: s1,
        p2_from_d_terminal: t2,
    }
}

/// The digraph `D` of Figure 3 (28 nodes, 28 edges).
pub fn digraph_d() -> (Digraph, DAnchors) {
    let mut g = Digraph::new(0);
    let anchors = glue_d(&mut g);
    (g, anchors)
}

/// `D_ac`: `D` with `a` and `c` identified (Figure 4, left).
pub fn digraph_d_ac() -> Digraph {
    let (g, an) = digraph_d();
    g.identify(an.a, an.c).0
}

/// `D_bd`: `D` with `b` and `d` identified (Figure 4, right).
pub fn digraph_d_bd() -> Digraph {
    let (g, an) = digraph_d();
    g.identify(an.b, an.d).0
}

/// One letter of the folding word `s ∈ {V, H}ⁿ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fold {
    /// Identify `a` with `c` (the copy becomes `D_ac`).
    V,
    /// Identify `b` with `d` (the copy becomes `D_bd`).
    H,
}

/// `G_n` (Figure 5): `n` chained copies of `D`, plus the anchors of each
/// copy.
pub fn g_n(n: usize) -> (Digraph, Vec<DAnchors>) {
    assert!(n >= 1);
    let mut g = Digraph::new(0);
    let mut anchors = Vec::with_capacity(n);
    for i in 0..n {
        let an = glue_d(&mut g);
        if i > 0 {
            let prev: &DAnchors = &anchors[i - 1];
            // Edge from the terminal of the P2 starting at d in copy i−1
            // to the initial of the P1 ending at a in copy i.
            g.add_edge(prev.p2_from_d_terminal, an.p1_into_a_initial);
        }
        anchors.push(an);
    }
    (g, anchors)
}

/// `G_n^s`: `G_n` folded copy-by-copy according to `s`.
pub fn g_n_s(s: &[Fold]) -> Digraph {
    let (mut g, anchors) = g_n(s.len());
    // Identify from the last copy backwards so earlier anchor indices stay
    // valid: identify() compacts indices, so re-track via the returned
    // maps instead.
    let mut current = g.clone();
    let mut node_of: Vec<Element> = (0..g.n() as Element).collect();
    for (i, &fold) in s.iter().enumerate() {
        let (x, y) = match fold {
            Fold::V => (anchors[i].a, anchors[i].c),
            Fold::H => (anchors[i].b, anchors[i].d),
        };
        let (next, map) = current.identify(node_of[x as usize], node_of[y as usize]);
        for slot in node_of.iter_mut() {
            *slot = map[*slot as usize];
        }
        current = next;
    }
    g = current;
    g
}

/// All `2ⁿ` folding words of length `n`.
pub fn all_words(n: usize) -> Vec<Vec<Fold>> {
    (0..(1u32 << n))
        .map(|mask| {
            (0..n)
                .map(|i| {
                    if (mask >> i) & 1 == 0 {
                        Fold::V
                    } else {
                        Fold::H
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_graphs::{balance, UGraph};
    use cqapx_structures::{core_ops, HomProblem, Pointed};

    #[test]
    fn d_shape() {
        let (g, an) = digraph_d();
        assert_eq!(g.n(), 28, "Q_n has 28n variables");
        assert_eq!(g.edge_count(), 28, "29n − 1 edges for n = 1");
        assert!(g.has_edge(an.a, an.b));
        let info = balance::levels(&g);
        assert!(info.balanced);
        assert_eq!(info.height, 9, "Figure 4 levels go up to 9");
    }

    #[test]
    fn dac_dbd_are_incomparable_cores() {
        // Claim 4.6.
        let dac = digraph_d_ac().to_structure();
        let dbd = digraph_d_bd().to_structure();
        assert!(!HomProblem::new(&dac, &dbd).exists(), "D_ac ↛ D_bd");
        assert!(!HomProblem::new(&dbd, &dac).exists(), "D_bd ↛ D_ac");
        assert!(core_ops::is_core(&Pointed::boolean(dac)));
        assert!(core_ops::is_core(&Pointed::boolean(dbd)));
    }

    #[test]
    fn folds_are_acyclic_and_balanced() {
        let dac = digraph_d_ac();
        let dbd = digraph_d_bd();
        assert!(UGraph::underlying(&dac).is_forest(), "D_ac is acyclic");
        assert!(UGraph::underlying(&dbd).is_forest(), "D_bd is acyclic");
        assert!(balance::is_balanced(&dac));
        assert!(balance::is_balanced(&dbd));
        assert_eq!(balance::height(&dac), 9, "Figure 4: height 9");
        assert_eq!(balance::height(&dbd), 9);
    }

    #[test]
    fn gn_maps_onto_each_fold() {
        // G_n → G_n^s via the quotient map (Claim 4.8 direction).
        let (g2, _) = g_n(2);
        let g2s = g_n_s(&[Fold::V, Fold::H]);
        assert!(HomProblem::new(&g2.to_structure(), &g2s.to_structure()).exists());
        assert!(UGraph::underlying(&g2s).is_forest(), "G_n^s ∈ TW(1)");
    }

    #[test]
    fn folded_words_pairwise_incomparable_n2() {
        // Claim 4.7 for n = 2: the 4 folds are pairwise incomparable cores.
        let words = all_words(2);
        let folds: Vec<_> = words.iter().map(|w| g_n_s(w).to_structure()).collect();
        for (i, a) in folds.iter().enumerate() {
            assert!(
                core_ops::is_core(&Pointed::boolean(a.clone())),
                "fold {i} is a core"
            );
            for (j, b) in folds.iter().enumerate() {
                if i != j {
                    assert!(!HomProblem::new(a, b).exists(), "fold {i} ↛ fold {j}");
                }
            }
        }
    }

    #[test]
    fn gn_levels_grow() {
        // Figure 5: chained copies occupy disjoint level bands (the i-th
        // copy's levels are shifted by 10).
        let (g3, anchors) = g_n(3);
        let info = balance::levels(&g3);
        assert!(info.balanced);
        assert_eq!(info.height, 29, "G_3 reaches level 29");
        assert_eq!(
            info.levels[anchors[0].a as usize] + 10,
            info.levels[anchors[1].a as usize]
        );
    }
}
