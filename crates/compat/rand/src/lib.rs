//! Local stand-in for the slice of `rand` 0.8 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_bool`, and `Rng::gen_range` over
//! integer ranges. Deterministic by construction (benchmark workloads are
//! seeded), implemented as splitmix64-seeded xoshiro256**.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniformly samples the range with the given source of bits.
    fn sample(self, bits: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (bits() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (bits() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The subset of `rand::Rng` used by the workloads.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in the given integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256** seeded via
    /// splitmix64. Statistically strong enough for benchmark workload
    /// generation; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y: usize = r.gen_range(0..=4usize);
            assert!(y <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
