//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification: a fixed length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.draw(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Some(out)
    }
}

/// Vectors whose length lies in `size`, elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeSet`s of values from an element strategy.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
        let target = self.size.draw(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; cap the attempts so narrow element
        // domains terminate (possibly below target, but ≥ min or reject).
        let mut attempts = 0;
        while out.len() < target && attempts < 10 * target + 16 {
            attempts += 1;
            out.insert(self.element.generate(rng)?);
        }
        if out.len() >= self.size.min {
            Some(out)
        } else {
            None
        }
    }
}

/// Sets whose cardinality lies in `size` (best effort when the element
/// domain is smaller than the requested size), elements from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
