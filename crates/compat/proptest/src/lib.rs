//! Local stand-in for the slice of `proptest` this workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_flat_map`/`prop_filter`, integer-range and tuple
//! strategies, [`collection::vec`]/[`collection::btree_set`],
//! [`arbitrary::any`], the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Semantics: each test function runs `cases` deterministic
//! pseudo-random cases (seeded from the test's name, so failures
//! reproduce across runs). Rejections — `prop_filter` misses and
//! `prop_assume!` failures — are retried with a global cap. **No
//! shrinking**: a failing case panics with the seed index so it can be
//! re-run; the real proptest can be swapped back in via Cargo.toml alone.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual glob import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Rejects the current case (it is re-drawn, not counted) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return false;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return false;
        }
    };
}

/// Declares property tests: a block of `#[test]` functions whose
/// arguments are drawn from strategies, with an optional
/// `#![proptest_config(...)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let strategies = ( $( $strat, )+ );
                let mut accepted: u32 = 0;
                let mut drawn: u32 = 0;
                while accepted < config.cases {
                    drawn += 1;
                    assert!(
                        drawn < config.cases.saturating_mul(20) + 1000,
                        "too many rejected samples in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                    // Fresh tuple binding each draw; any strategy rejection
                    // re-draws the whole case.
                    let ( $( $arg, )+ ) = {
                        let ( $( ref $arg, )+ ) = strategies;
                        (
                            $(
                                match $crate::strategy::Strategy::generate($arg, &mut rng) {
                                    Some(v) => v,
                                    None => continue,
                                },
                            )+
                        )
                    };
                    let case = drawn;
                    let counted = (move || -> bool {
                        let _ = case;
                        $body
                        #[allow(unreachable_code)]
                        true
                    })();
                    if counted {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}
