//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// How many times a filtering combinator re-draws its inner value before
/// giving up on the whole case.
const LOCAL_RETRIES: u32 = 32;

/// A reusable recipe for generating values of one type.
///
/// `generate` returns `None` when the draw was rejected (filter miss);
/// the runner then re-draws the entire case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or rejects.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it induces.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            _reason: reason,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<T::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    _reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                Some(start + rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
