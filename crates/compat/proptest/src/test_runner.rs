//! Configuration and the deterministic RNG behind `proptest!`.

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic pseudo-random source for property tests (splitmix64
/// stream seeded from the test name, so each test draws a stable
/// sequence across runs and machines).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
