//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no crate-registry access, so this workspace
//! vendors the tiny slice of the serde surface it actually uses. The code
//! base only *derives* `Serialize`/`Deserialize` (nothing serializes yet);
//! these derives therefore expand to nothing, keeping the annotations
//! compiling until a real serde can be dropped in.

use proc_macro::TokenStream;

/// Expands to nothing; accepted wherever `#[derive(Serialize)]` appears.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted wherever `#[derive(Deserialize)]` appears.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
