//! Local stand-in for the slice of `criterion` this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and `black_box`.
//!
//! Measurement model: each benchmark closure is warmed up once, then timed
//! over `sample_size` samples (default 20, each sample one iteration batch
//! sized to take ≳1ms); the median per-iteration time is printed as
//!
//! ```text
//! bench <group>/<name> ... median 12.3µs (20 samples)
//! ```
//!
//! No plots, no statistics beyond the median — enough to track the perf
//! trajectory offline; the real criterion can be swapped back in via
//! Cargo.toml alone.
//!
//! Setting `CQAPX_BENCH_SMOKE=1` switches every benchmark to a single
//! sample of a single iteration (no batch sizing): a CI smoke mode that
//! proves the benches still *run* without paying for measurements.

use std::time::{Duration, Instant};

/// `true` when the single-iteration CI smoke mode is requested.
fn smoke_mode() -> bool {
    std::env::var_os("CQAPX_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `new("naive", n)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter value.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration of the last `iter` call.
    last_median: Option<Duration>,
}

impl Bencher {
    /// Times `f`, recording the median per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if smoke_mode() {
            let t = Instant::now();
            black_box(f());
            self.last_median = Some(t.elapsed());
            return;
        }
        // Warm-up and batch sizing: grow the batch until it takes ≥1ms.
        let mut batch = 1u32;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t.elapsed() / batch);
        }
        per_iter.sort_unstable();
        self.last_median = Some(per_iter[per_iter.len() / 2]);
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

fn run_one(group: &str, name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let samples = if smoke_mode() { 1 } else { samples };
    let mut b = Bencher {
        samples,
        last_median: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    let suffix = if smoke_mode() { " [smoke]" } else { "" };
    match b.last_median {
        Some(m) => println!(
            "bench {label} ... median {} ({samples} samples){suffix}",
            human(m)
        ),
        None => println!("bench {label} ... no measurement"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one(&self.name, &id.to_string(), self.sample_size, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental; this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        run_one("", &name.to_string(), 20, |b| f(b));
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
