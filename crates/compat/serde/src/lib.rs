//! Local stand-in for `serde` (see `serde_derive` for why it exists).
//!
//! Exposes the two marker traits and their (no-op) derive macros under the
//! usual names, so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Swapping in the
//! real serde later requires only a Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
