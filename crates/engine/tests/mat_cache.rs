//! Engine-level tests of the per-database relation-materialization
//! cache: identical answers before/after a cache hit, correct behavior
//! across database re-registration (a fresh snapshot gets a fresh
//! cache), sharing across prepared queries, and hit-rate reporting in
//! `EngineStats`.

use cqapx_cq::parse_cq;
use cqapx_engine::{Engine, EngineConfig, PlanKind, Request};
use cqapx_structures::Structure;

fn path_db(n: u32) -> Structure {
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    Structure::digraph(n as usize, &edges)
}

#[test]
fn repeated_requests_hit_and_answers_match() {
    let e = Engine::new(EngineConfig::default());
    let db = e.register_database("p", path_db(6));
    let q = e.prepare_query("two_hop", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
    let req = Request::new(q, db);
    let r1 = e.execute(&req);
    let r2 = e.execute(&req);
    assert_eq!(r1.plan, PlanKind::Yannakakis);
    assert_eq!(r1.answers, r2.answers, "cache hit must not change answers");
    assert_eq!(r1.answers.len(), 4);
    // Cold run materialized; warm run only hit.
    assert!(r1.mat_cache.misses > 0);
    assert_eq!(r2.mat_cache.misses, 0);
    assert!(r2.mat_cache.hits > 0);
    let stats = e.stats();
    assert!(stats.mat_hits > 0, "EngineStats must report mat-cache hits");
    assert!(stats.mat_hit_rate() > 0.0);
    assert!(stats.to_string().contains("mat cache"));
}

#[test]
fn cache_is_shared_across_prepared_queries() {
    let e = Engine::new(EngineConfig::default());
    let db = e.register_database("p", path_db(6));
    let q1 = e.prepare_query("two_hop", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
    let q2 = e.prepare_query("edges", parse_cq("Q(a, b) :- E(a, b)").unwrap());
    let r1 = e.execute(&Request::new(q1, db));
    // q2's single hyperedge has the same canonical key as q1's, so its
    // very first request is served from q1's materialization.
    let r2 = e.execute(&Request::new(q2, db));
    assert!(r1.mat_cache.misses > 0);
    assert_eq!(r2.mat_cache.misses, 0);
    assert!(r2.mat_cache.hits > 0);
    assert_eq!(r2.answers.len(), 5);
}

#[test]
fn reregistration_invalidates_and_recomputes() {
    let e = Engine::new(EngineConfig::default());
    let q = e.prepare_query("two_hop", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());

    let db1 = e.register_database("g", path_db(4));
    let r1a = e.execute(&Request::new(q, db1));
    let r1b = e.execute(&Request::new(q, db1));
    assert_eq!(r1a.answers, r1b.answers);
    assert_eq!(r1a.answers.len(), 2);

    // Re-register the same name with different data: new id, fresh
    // cache — answers must reflect the new snapshot, not a stale entry.
    let db2 = e.register_database("g", path_db(6));
    assert_ne!(db1, db2);
    let r2a = e.execute(&Request::new(q, db2));
    assert!(
        r2a.mat_cache.misses > 0,
        "fresh snapshot must re-materialize, not serve db1's entries"
    );
    assert_eq!(r2a.answers.len(), 4);
    let r2b = e.execute(&Request::new(q, db2));
    assert_eq!(r2a.answers, r2b.answers);
    assert_eq!(r2b.mat_cache.misses, 0);

    // The superseded snapshot still serves (append-only ids) and still
    // answers from its own data.
    let r1c = e.execute(&Request::new(q, db1));
    assert_eq!(r1c.answers, r1a.answers);
}

#[test]
fn batch_requests_share_the_cache() {
    let e = Engine::new(EngineConfig::default());
    let db = e.register_database("p", path_db(8));
    let q = e.prepare_query("two_hop", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
    let reqs: Vec<Request> = (0..16).map(|_| Request::new(q, db)).collect();
    let rs = e.execute_batch(&reqs);
    let first = &rs[0].answers;
    for r in &rs {
        assert_eq!(&r.answers, first, "all batch responses must agree");
    }
    let stats = e.stats();
    // 16 requests over one hyperedge key: exactly one materialization
    // wins; every other lookup hits (concurrent misses may race, but
    // hits must dominate).
    assert!(stats.mat_hits > 0);
    assert!(stats.mat_hit_rate() > 0.5, "rate {}", stats.mat_hit_rate());
}

#[test]
fn planner_reads_cached_cardinalities() {
    use cqapx_engine::{choose_plan, estimate_naive_cost};
    // A query whose only atom is the loop E(x, x): the raw relation
    // statistic counts every edge, the materialized hyperedge only the
    // loops — so a warm cache must tighten the estimate.
    let e = Engine::new(EngineConfig::default());
    let mut edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, (i + 1) % 20)).collect();
    edges.push((0, 0)); // a single loop
    let db = e.register_database("g", Structure::digraph(20, &edges));
    let q = e.prepare_query("loops_path", parse_cq("Q(x) :- E(x, x), E(x, y)").unwrap());
    let shape = cqapx_cq::QueryShape::of(&parse_cq("Q(x) :- E(x, x), E(x, y)").unwrap());
    let entry = e.database(db).expect("registered");
    let cold = estimate_naive_cost(&shape, &entry);
    // Warm the cache through a served request.
    e.execute(&Request::new(q, db));
    let warm = estimate_naive_cost(&shape, &entry);
    assert!(
        warm < cold,
        "warm estimate {warm} should beat cold estimate {cold}"
    );
    let decision = choose_plan(&shape, None, &entry, 1e6);
    assert_eq!(decision.est_naive_cost, warm);
}
