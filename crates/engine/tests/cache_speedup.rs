//! Acceptance check for the approximation cache: the second request for
//! an expensive approximation must hit the cache and be at least an
//! order of magnitude faster than the first.

use cqapx_core::{ApproxOptions, TwK};
use cqapx_cq::{parse_cq, tableau_of};
use cqapx_engine::ApproxCache;
use std::time::Instant;

#[test]
fn cached_approximation_is_10x_faster() {
    // The introduction's Q2: 8 variables, cyclic, with a unique acyclic
    // approximation — the search enumerates Bell(8) = 4140 partitions
    // with treewidth checks, while a cache hit is one signature plus one
    // isomorphism check.
    let q2 =
        parse_cq("Q() :- E(x,y), E(y,z), E(z,u), E(x1,y1), E(y1,z1), E(z1,u1), E(x,z1), E(y,u1)")
            .unwrap();
    let t = tableau_of(&q2);
    let opts = ApproxOptions::default();
    let cache = ApproxCache::new();

    let t0 = Instant::now();
    let (first, hit_first) = cache.get_or_compute(&t, &TwK(1), &opts);
    let t_miss = t0.elapsed();
    assert!(!hit_first);
    assert_eq!(first.report.approximations.len(), 1);

    // A renamed (isomorphic) variant must hit the same entry.
    let renamed =
        parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(a1,b1), E(b1,c1), E(c1,d1), E(a,c1), E(b,d1)")
            .unwrap();
    let renamed_tableau = tableau_of(&renamed);
    let (second, hit_second) = cache.get_or_compute(&renamed_tableau, &TwK(1), &opts);
    assert!(hit_second, "isomorphic tableau must hit the cache");
    assert_eq!(
        first.report.approximations.len(),
        second.report.approximations.len()
    );

    // Timing: take the minimum hit time over several lookups so a single
    // descheduling blip on a loaded CI machine cannot flake the ratio;
    // the miss above ran a Bell(8)-partition search and dwarfs any hit.
    let t_hit = (0..20)
        .map(|_| {
            let t0 = Instant::now();
            let (_, hit) = cache.get_or_compute(&renamed_tableau, &TwK(1), &opts);
            assert!(hit);
            t0.elapsed()
        })
        .min()
        .expect("nonempty");
    assert!(
        t_miss >= 10 * t_hit,
        "cache hit must be ≥10× faster: miss {t_miss:?} vs best-of-20 hit {t_hit:?}"
    );
}
