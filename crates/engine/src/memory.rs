//! Cache-budget plumbing: parsing the `CQAPX_CACHE_BUDGET` environment
//! variable and estimating the resident bytes of cached objects.
//!
//! Both engine caches are byte-accounted: the per-database
//! [`MaterializationCache`](cqapx_cq::eval::MaterializationCache)
//! measures its `FlatRelation` buffers exactly, while the
//! [`ApproxCache`](crate::ApproxCache) holds heterogeneous compiled
//! plans and tableaux, so its entries are *estimated* from the tuple
//! and universe counts of the structures they retain. Estimates only
//! steer eviction order and budget comparisons — they never affect
//! answers — so a consistent approximation is all that is required.

use cqapx_structures::{Pointed, Structure};
use std::mem::size_of;

/// Parses a byte budget: a plain integer, optionally suffixed with
/// `k`/`m`/`g` (case-insensitive, powers of 1024, an optional trailing
/// `b` is tolerated: `64k`, `512KB`, `2m`, `1g`). Returns `None` for
/// anything unparsable; `Some(0)` means explicitly unbounded.
pub fn parse_budget_bytes(s: &str) -> Option<usize> {
    let t = s.trim().to_ascii_lowercase();
    if t.is_empty() {
        return None;
    }
    let t = t.strip_suffix('b').unwrap_or(&t);
    let (digits, unit): (&str, usize) = match t.as_bytes().last()? {
        b'k' => (&t[..t.len() - 1], 1 << 10),
        b'm' => (&t[..t.len() - 1], 1 << 20),
        b'g' => (&t[..t.len() - 1], 1 << 30),
        _ => (t, 1),
    };
    let n: usize = digits.trim().parse().ok()?;
    n.checked_mul(unit)
}

/// The shared cache budget from the `CQAPX_CACHE_BUDGET` environment
/// variable, when set and parsable. Applies to **each** cache the
/// config leaves unbounded (it is a per-cache ceiling, not a global
/// pool). Read once per [`Engine`](crate::Engine) construction.
pub fn env_cache_budget() -> Option<usize> {
    std::env::var("CQAPX_CACHE_BUDGET")
        .ok()
        .and_then(|v| parse_budget_bytes(&v))
}

/// Estimated resident bytes of a structure: its tuple storage plus
/// per-element bookkeeping (indexes, names) and a fixed allocation
/// overhead.
pub fn structure_bytes(s: &Structure) -> usize {
    let tuple_elems: usize = s
        .vocabulary()
        .rel_ids()
        .map(|r| s.tuples(r).len() * s.vocabulary().arity(r))
        .sum();
    // Tuples are stored once and indexed once (the lazy per-structure
    // inverted index roughly doubles them); elements carry id-sized
    // bookkeeping.
    tuple_elems * 2 * size_of::<u32>() + s.universe_size() * size_of::<usize>() + 64
}

/// Estimated resident bytes of a pointed structure (tableau).
pub fn pointed_bytes(p: &Pointed) -> usize {
    structure_bytes(&p.structure) + std::mem::size_of_val(p.distinguished())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_suffixed() {
        assert_eq!(parse_budget_bytes("0"), Some(0));
        assert_eq!(parse_budget_bytes("65536"), Some(65536));
        assert_eq!(parse_budget_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_budget_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_budget_bytes("512kb"), Some(512 << 10));
        assert_eq!(parse_budget_bytes(" 2m "), Some(2 << 20));
        assert_eq!(parse_budget_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_budget_bytes("1GB"), Some(1 << 30));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_budget_bytes(""), None);
        assert_eq!(parse_budget_bytes("k"), None);
        assert_eq!(parse_budget_bytes("12q"), None);
        assert_eq!(parse_budget_bytes("-5"), None);
        assert_eq!(parse_budget_bytes("1.5m"), None);
    }

    #[test]
    fn structure_estimate_scales_with_tuples() {
        let small = Structure::digraph(4, &[(0, 1)]);
        let big = Structure::digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(structure_bytes(&big) > structure_bytes(&small));
        let p = Pointed::new(Structure::digraph(3, &[(0, 1)]), vec![0, 1]);
        assert!(pointed_bytes(&p) > structure_bytes(&p.structure));
    }
}
