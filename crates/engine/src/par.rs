//! Minimal data-parallel map over scoped threads.
//!
//! The build environment has no crate registry, so rayon is not
//! available; this module provides the one primitive the engine needs —
//! an order-preserving parallel map with work stealing by atomic index —
//! on plain `std::thread::scope`. Swapping in rayon later means replacing
//! the body of [`parallel_map`] with `into_par_iter().map().collect()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `threads` worker threads, returning
/// results in input order. `threads == 1` (or a single item) degrades to
/// a sequential map with no thread overhead.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each index claimed once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: u64| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_and_empty() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(Vec::<u32>::new(), 4, |x| x), Vec::<u32>::new());
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(parallel_map(vec![5], 16, |x| x * 2), vec![10]);
    }
}
