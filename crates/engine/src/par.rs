//! Re-export of the shared worker-pool primitives.
//!
//! The engine's original minimal `parallel_map` grew into the
//! [`cqapx_par`] crate so the evaluation kernel (`cqapx-cq`) can share
//! the same morsel-driven work-stealing machinery and — through
//! [`ThreadBudget`] — the same core budget as batch execution. This
//! module keeps the `cqapx_engine::par` path stable for existing users.

pub use cqapx_par::{
    default_threads, env_threads, parallel_chunks, parallel_map, Lease, ThreadBudget,
};
