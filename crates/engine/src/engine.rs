//! The engine: catalog + cache + planner + parallel batch execution.

use crate::cache::{ApproxCache, CachedApproximation};
use crate::catalog::{Catalog, DatabaseEntry, DbId, PreparedQuery, QueryId};
use crate::par::{default_threads, env_threads, parallel_map, ThreadBudget};
use crate::planner::{choose_plan, PlanDecision, PlanKind, PlanReason};
use cqapx_core::{Acyclic, ApproxOptions, HtwK, QueryClass, TwK};
use cqapx_cq::eval::{EvalProfile, MatCacheStats, NaivePlan};
use cqapx_metrics::{
    Counter, CounterFamily, EventLog, Gauge, HistogramFamily, HistogramSnapshot, MetricsLevel,
    MetricsSink, TraceEvent,
};
use cqapx_structures::{Element, HomSearchStats, SearchBudget, Structure};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Which tractable class the sandwich plan approximates into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxClassChoice {
    /// `AC` (α-acyclic queries; evaluators use Yannakakis).
    Acyclic,
    /// `TW(k)`.
    TwK(usize),
    /// `HTW(k)`.
    HtwK(usize),
}

impl ApproxClassChoice {
    /// The class as a membership oracle.
    pub fn as_class(&self) -> Box<dyn QueryClass + Send + Sync> {
        match *self {
            ApproxClassChoice::Acyclic => Box::new(Acyclic),
            ApproxClassChoice::TwK(k) => Box::new(TwK(k)),
            ApproxClassChoice::HtwK(k) => Box::new(HtwK(k)),
        }
    }
}

/// Engine-wide tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The engine's **total** worker-thread budget, shared between
    /// batch-level parallelism (requests spread over workers) and
    /// intra-query parallelism (morsel-parallel joins, semijoins,
    /// sorts, and concurrent bag materializations inside one request) —
    /// one pool, so the two levels can never oversubscribe the cores.
    /// `0` = the `CQAPX_THREADS` environment variable when set, else
    /// available parallelism. `1` = fully sequential execution.
    pub threads: usize,
    /// Planner budget: estimated branch nodes the naive join may cost
    /// before the planner switches to the approximation sandwich.
    pub naive_cost_budget: f64,
    /// Class for sandwich approximations.
    pub approx_class: ApproxClassChoice,
    /// Options for the (cached) approximation search.
    pub approx_options: ApproxOptions,
    /// Default per-request timeout (individual requests may override).
    ///
    /// The deadline bounds **join evaluation** (naive search nodes and
    /// answer enumeration). It does not bound a first-time approximation
    /// search on the certain-answer path — that work is amortized across
    /// all requests for the query's isomorphism class and is treated as
    /// prepare-style work — nor the in-class approximation evaluators
    /// (tractable by construction). Pre-warm the cache with a
    /// [`EvalMode::CertainOnly`] request if first-request latency
    /// matters.
    pub default_timeout: Option<Duration>,
    /// Search-node budget granted per millisecond of remaining deadline
    /// (converts wall timeouts into hom-search node budgets, so even
    /// fruitless searches stop near the deadline).
    pub nodes_per_ms: u64,
    /// How much the engine instruments itself (see [`MetricsLevel`]).
    /// The default reads `CQAPX_METRICS` (unset → `Counters`).
    /// [`MetricsLevel::None`] reduces every instrumentation site to a
    /// field-read branch. `Counters` is also what powers deadline-aware
    /// degradation — without latency histograms there is no p99 to
    /// predict from.
    pub metrics: MetricsLevel,
    /// Admission control: the maximum number of requests that may be
    /// outstanding (admitted and not yet finished) at once. Requests
    /// arriving beyond the limit are not planned or evaluated at all —
    /// they return immediately with [`ResponseStatus::Shed`] and empty
    /// (vacuously sound) answers. `None` disables shedding.
    pub max_queue_depth: Option<usize>,
    /// Byte budget for **each** registered database's relation-
    /// materialization cache. `None` falls back to the
    /// `CQAPX_CACHE_BUDGET` environment variable (plain bytes or
    /// `k`/`m`/`g` suffixes); unset means unbounded, and `Some(0)`
    /// forces unbounded regardless of the environment. Over-budget
    /// caches evict clock-wise with second chances; evicted relations
    /// are rebuilt byte-identically on the next request.
    pub mat_cache_budget_bytes: Option<usize>,
    /// Byte budget for the shared approximation cache, with the same
    /// `None` → `CQAPX_CACHE_BUDGET` → unbounded fallback. Eviction
    /// prefers entries with the lowest measured rebuild cost per
    /// resident byte, so expensive single-exponential searches stay
    /// amortized the longest.
    pub approx_cache_budget_bytes: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            naive_cost_budget: 5e7,
            approx_class: ApproxClassChoice::TwK(1),
            approx_options: ApproxOptions::default(),
            default_timeout: None,
            nodes_per_ms: 50_000,
            metrics: MetricsLevel::from_env(),
            max_queue_depth: None,
            mat_cache_budget_bytes: None,
            approx_cache_budget_bytes: None,
        }
    }
}

/// Samples a query class's latency histogram must hold before its p99
/// is trusted to predict a deadline miss (and trigger the sandwich
/// downgrade). Below this, the engine optimistically runs the chosen
/// plan and lets the deadline budget bound it.
pub const DEGRADE_MIN_SAMPLES: u64 = 16;

/// How much of the answer a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// The exact answer `Q(D)` (sandwich plans refine via the exact join).
    #[default]
    Exact,
    /// Only guaranteed-correct answers, as fast as possible: sandwich
    /// plans stop at `Q'(D) ⊆ Q(D)` without refining.
    CertainOnly,
}

/// One unit of work for [`Engine::execute_batch`].
#[derive(Debug, Clone)]
pub struct Request {
    /// The prepared query to evaluate.
    pub query: QueryId,
    /// The registered database to evaluate on.
    pub db: DbId,
    /// Exact or certain-only.
    pub mode: EvalMode,
    /// Per-request timeout override (falls back to the engine default).
    /// Bounds join evaluation, not a first-time approximation search —
    /// see [`EngineConfig::default_timeout`].
    pub timeout: Option<Duration>,
}

impl Request {
    /// An exact-mode request with the engine's default timeout.
    pub fn new(query: QueryId, db: DbId) -> Self {
        Request {
            query,
            db,
            mode: EvalMode::Exact,
            timeout: None,
        }
    }
}

/// Completeness of a response's answer set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// `answers` is exactly `Q(D)`.
    Complete,
    /// `answers ⊆ Q(D)`: the certain answers of the approximation
    /// (requested via [`EvalMode::CertainOnly`]).
    CertainOnly,
    /// The deadline or node budget cut evaluation short; `answers` is
    /// still sound (`⊆ Q(D)`) but possibly incomplete.
    TimedOut,
    /// The measured p99 of the query's class predicted the exact plan
    /// would miss its deadline, so the engine served the approximation's
    /// certain answers up front: `answers ⊆ Q(D)`, possibly incomplete,
    /// delivered in time instead of timing out.
    Degraded,
    /// Admission control rejected the request at the door (queue depth
    /// over [`EngineConfig::max_queue_depth`]): nothing was planned or
    /// evaluated; `answers` is empty (vacuously sound).
    Shed,
}

/// The outcome of one request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Answer tuples (sound in every status; complete only in
    /// [`ResponseStatus::Complete`]).
    pub answers: BTreeSet<Vec<Element>>,
    /// Completeness of `answers`.
    pub status: ResponseStatus,
    /// The plan the engine chose.
    pub plan: PlanKind,
    /// Width of the query's compiled tree decomposition, when it has
    /// one (set whether or not the decomposed tier was chosen —
    /// observability parity with `mat_cache`).
    pub decomposition_width: Option<usize>,
    /// For sandwich plans: whether the approximation came from the cache.
    pub cache_hit: Option<bool>,
    /// Relation-materialization cache outcome of this request: how many
    /// hyperedge scans were skipped (hits) vs run (misses). All-zero for
    /// plans that never materialize (naive backtracking).
    pub mat_cache: MatCacheStats,
    /// Wall time of this request.
    pub wall: Duration,
    /// The planner's full decision (estimates, budget, rationale).
    decision: PlanDecision,
    /// What happened after planning, appended to the rationale.
    note: ReasonNote,
}

/// Execution-path modifier appended to the planner's rationale.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReasonNote {
    /// The plan ran as chosen.
    None,
    /// Sandwich plan in exact mode: the full join ran under the
    /// deadline, the approximation stood by as fallback.
    ExactFallback,
    /// Deadline-aware degradation fired: measured class p99 (µs) vs
    /// the deadline headroom (µs) that was left.
    Degraded { p99_us: u64, headroom_us: u64 },
}

impl Response {
    /// The planner's rationale, rendered on demand — requests nobody
    /// inspects never pay for the formatting (this used to be an eager
    /// `String` built on every request).
    pub fn plan_reason(&self) -> String {
        let mut text = self.decision.describe();
        match self.note {
            ReasonNote::None => {}
            ReasonNote::ExactFallback => {
                text.push_str(
                    "; exact mode: full join under the deadline, approximation as fallback",
                );
            }
            ReasonNote::Degraded {
                p99_us,
                headroom_us,
            } => {
                text.push_str(&format!(
                    "; degraded: measured class p99 {p99_us}µs exceeds the {headroom_us}µs left before the deadline — serving certain answers up front"
                ));
            }
        }
        text
    }

    /// The planner's full decision: estimates, the budget they were
    /// compared against, and the machine-readable rationale.
    pub fn decision(&self) -> &PlanDecision {
        &self.decision
    }
}

/// Aggregate serving statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Requests served.
    pub requests: u64,
    /// Requests answered exactly.
    pub complete: u64,
    /// Requests answered with certain answers only.
    pub certain_only: u64,
    /// Requests cut short by deadline/budget.
    pub timed_out: u64,
    /// Requests downgraded to certain answers up front because the
    /// measured class p99 predicted a deadline miss.
    pub degraded: u64,
    /// Requests rejected by queue-depth admission control.
    pub shed: u64,
    /// Plan counts.
    pub plan_yannakakis: u64,
    /// Plan counts.
    pub plan_decomposed: u64,
    /// Plan counts.
    pub plan_naive: u64,
    /// Plan counts.
    pub plan_sandwich: u64,
    /// Approximation-cache hits (sandwich requests that skipped the
    /// single-exponential search, whether via the per-query memo or the
    /// shared isomorphism-keyed cache).
    pub cache_hits: u64,
    /// Approximation-cache misses (searches actually run).
    pub cache_misses: u64,
    /// Relation-materialization cache hits: hyperedge scans skipped
    /// because the per-database cache already held the relation.
    pub mat_hits: u64,
    /// Relation-materialization cache misses: hyperedge relations
    /// actually scanned (and inserted for later requests).
    pub mat_misses: u64,
    /// Multi-part bags joined with the left-deep binary pipeline.
    pub bag_builds_binary: u64,
    /// Multi-part bags joined with the worst-case-optimal multiway
    /// kernel.
    pub bag_builds_wcoj: u64,
    /// Total answer tuples returned.
    pub answers: u64,
    /// Summed per-request wall time (across workers; exceeds elapsed
    /// wall clock under parallelism).
    pub busy: Duration,
}

impl EngineStats {
    /// Cache hit rate in `[0, 1]` (0 when no sandwich request ran yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Materialization-cache hit rate in `[0, 1]` (0 when no request
    /// materialized a hyperedge relation yet).
    pub fn mat_hit_rate(&self) -> f64 {
        let total = self.mat_hits + self.mat_misses;
        if total == 0 {
            0.0
        } else {
            self.mat_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "requests        {}", self.requests)?;
        writeln!(
            f,
            "  complete {} · certain-only {} · timed-out {} · degraded {} · shed {}",
            self.complete, self.certain_only, self.timed_out, self.degraded, self.shed
        )?;
        writeln!(
            f,
            "plans           yannakakis {} · decomposed {} · naive {} · sandwich {}",
            self.plan_yannakakis, self.plan_decomposed, self.plan_naive, self.plan_sandwich
        )?;
        writeln!(
            f,
            "approx cache    hits {} · misses {} (hit rate {:.1}%)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate()
        )?;
        writeln!(
            f,
            "mat cache       hits {} · misses {} (hit rate {:.1}%)",
            self.mat_hits,
            self.mat_misses,
            100.0 * self.mat_hit_rate()
        )?;
        writeln!(
            f,
            "bag builds      binary {} · wcoj {}",
            self.bag_builds_binary, self.bag_builds_wcoj
        )?;
        writeln!(f, "answers         {}", self.answers)?;
        write!(f, "busy time       {:?}", self.busy)
    }
}

/// The engine's tiered instrumentation (see [`MetricsLevel`] for what
/// each level records). Recording is lock-free: histograms and counters
/// are atomics, label handles intern through a read-mostly registry.
#[derive(Debug)]
struct EngineMetrics {
    /// Copied out of the config: every instrumentation site gates on
    /// this one field, so `None` costs a single predictable branch.
    level: MetricsLevel,
    /// Construction instant; trace timestamps are relative to it.
    epoch: Instant,
    /// Request latency by query class: one histogram per plan tier,
    /// plus `"degraded"` and `"shed"` (kept out of the tier histograms
    /// so a degrading engine does not poison the p99 it predicts from).
    class_latency: HistogramFamily,
    /// Request latency by tenant database (registration name).
    db_latency: HistogramFamily,
    /// Approximation-cache outcomes by database: `"<db>/hits"`,
    /// `"<db>/misses"`.
    approx_cache_by_db: CounterFamily,
    /// Materialization-cache outcomes by database, same label scheme.
    mat_cache_by_db: CounterFamily,
    /// Queue depth (outstanding admitted requests) sampled at each
    /// admission decision.
    queue_depth: Gauge,
    /// Resident bytes of the served database's materialization cache,
    /// sampled at each response.
    mat_cache_bytes: Gauge,
    /// Estimated resident bytes of the approximation cache, sampled at
    /// each response.
    approx_cache_bytes: Gauge,
    /// Unclaimed workers in the [`ThreadBudget`] sampled at each
    /// request start (capacity minus claimed).
    workers_available: Gauge,
    /// `Debug`: solver branching decisions across requests.
    solver_nodes: Counter,
    /// `Debug`: solver AC-3 constraint revisions across requests.
    solver_revisions: Counter,
    /// `Debug`: searches stopped by an exhausted step budget.
    solver_budget_exhaustions: Counter,
    /// `Debug`: plan-IR operator wall time by operator kind (µs).
    op_micros: CounterFamily,
    /// `Debug`: plan-IR operator output rows by operator kind.
    op_rows: CounterFamily,
    /// `Debug`: bag-build time by join strategy (`"binary"`/`"wcoj"`),
    /// recorded as per-response totals in µs.
    bag_build: HistogramFamily,
    /// `Trace`: per-request structured event spans, bounded ring.
    trace: EventLog,
}

/// Buffered trace events an [`EventLog`] may hold before dropping the
/// oldest.
const TRACE_CAPACITY: usize = 4096;

impl EngineMetrics {
    fn new(level: MetricsLevel) -> EngineMetrics {
        EngineMetrics {
            level,
            epoch: Instant::now(),
            class_latency: HistogramFamily::new(),
            db_latency: HistogramFamily::new(),
            approx_cache_by_db: CounterFamily::new(),
            mat_cache_by_db: CounterFamily::new(),
            queue_depth: Gauge::new(),
            mat_cache_bytes: Gauge::new(),
            approx_cache_bytes: Gauge::new(),
            workers_available: Gauge::new(),
            solver_nodes: Counter::new(),
            solver_revisions: Counter::new(),
            solver_budget_exhaustions: Counter::new(),
            op_micros: CounterFamily::new(),
            op_rows: CounterFamily::new(),
            bag_build: HistogramFamily::new(),
            trace: EventLog::new(level, TRACE_CAPACITY),
        }
    }

    fn reset(&self) {
        self.class_latency.reset();
        self.db_latency.reset();
        self.approx_cache_by_db.reset();
        self.mat_cache_by_db.reset();
        self.solver_nodes.reset();
        self.solver_revisions.reset();
        self.solver_budget_exhaustions.reset();
        self.op_micros.reset();
        self.op_rows.reset();
        self.bag_build.reset();
    }
}

/// The label a response's latency is recorded under: the plan tier,
/// except that degraded and shed requests get their own classes (their
/// latencies describe the *degraded* path, not the tier the planner
/// picked, and must not feed back into its p99).
fn class_label(r: &Response) -> &'static str {
    match r.status {
        ResponseStatus::Shed => "shed",
        ResponseStatus::Degraded => "degraded",
        _ => match r.plan {
            PlanKind::Yannakakis => "yannakakis",
            PlanKind::Decomposed => "decomposed",
            PlanKind::Naive => "naive",
            PlanKind::Sandwich => "sandwich",
            PlanKind::Shed => "shed",
        },
    }
}

/// A point-in-time copy of everything the engine measures: the
/// aggregate counters plus, when the metrics level records them, the
/// latency distributions, per-database cache outcomes, solver and
/// operator activity, and occupancy gauges. Taken by
/// [`Engine::snapshot`]; [`Engine::reset_stats`] zeroes the underlying
/// instruments so serving epochs (warmup vs measurement) don't
/// accumulate into each other.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// The aggregate counters ([`Engine::stats`]).
    pub counters: EngineStats,
    /// The level the engine records at.
    pub level: MetricsLevel,
    /// Latency quantiles by query class (plan tier, `"degraded"`,
    /// `"shed"`); values in microseconds. Empty below `Counters`.
    pub class_latency: BTreeMap<String, HistogramSnapshot>,
    /// Latency quantiles by tenant database. Empty below `Counters`.
    pub db_latency: BTreeMap<String, HistogramSnapshot>,
    /// Approximation-cache outcomes by database (`"<db>/hits"`,
    /// `"<db>/misses"`). Empty below `Counters`.
    pub approx_cache_by_db: BTreeMap<String, u64>,
    /// Materialization-cache outcomes by database, same label scheme.
    pub mat_cache_by_db: BTreeMap<String, u64>,
    /// Resident bytes of each database's materialization cache, by
    /// registration name (on re-registration the live entry wins).
    /// Authoritative — read from the caches at snapshot time, at every
    /// metrics level.
    pub mat_cache_bytes_by_db: BTreeMap<String, u64>,
    /// Budget-driven evictions of each database's materialization
    /// cache, by registration name.
    pub mat_cache_evictions_by_db: BTreeMap<String, u64>,
    /// Domain-dictionary sizes (distinct active-domain elements) by
    /// registration name.
    pub dict_size_by_db: BTreeMap<String, u64>,
    /// Per-database materialization-cache byte budget (`0` = unbounded).
    pub mat_cache_budget_bytes: u64,
    /// Estimated resident bytes of the approximation cache.
    pub approx_cache_bytes: u64,
    /// Approximation-cache byte budget (`0` = unbounded).
    pub approx_cache_budget_bytes: u64,
    /// Approximation-cache entries evicted by the byte budget.
    pub approx_cache_evictions: u64,
    /// `Debug`: total solver branching decisions.
    pub solver_nodes: u64,
    /// `Debug`: total solver AC-3 revisions.
    pub solver_revisions: u64,
    /// `Debug`: searches stopped by an exhausted step budget.
    pub solver_budget_exhaustions: u64,
    /// `Debug`: plan-IR wall time by operator kind (µs).
    pub op_micros: BTreeMap<String, u64>,
    /// `Debug`: plan-IR output rows by operator kind.
    pub op_rows: BTreeMap<String, u64>,
    /// `Debug`: bag-build time quantiles by join strategy
    /// (`"binary"`/`"wcoj"`), per-response totals in µs.
    pub bag_build_latency: BTreeMap<String, HistogramSnapshot>,
    /// Column existence bitmaps built by the eval layer, process-wide
    /// (the `CQAPX_BITMAP` kernels). Authoritative at every level.
    pub bitmap_builds: u64,
    /// Kernel dispatches answered via bitmaps instead of index probes,
    /// process-wide.
    pub bitmap_probes: u64,
    /// Word-table bytes of currently live column bitmaps, process-wide
    /// (bitmaps on cached materializations are also inside each cache's
    /// resident bytes — see `mat_cache_bytes_by_db`).
    pub bitmap_resident_bytes: u64,
    /// Packed code-word indexes and radix dedups built by the eval
    /// layer, process-wide (the `CQAPX_PACKED` kernels). Packed
    /// structures are transient — built, probed, dropped — so there is
    /// no resident-bytes gauge and cache byte accounting is untouched.
    pub packed_builds: u64,
    /// Rows fed through the packed kernels, process-wide.
    pub packed_rows: u64,
    /// Outstanding admitted requests at snapshot time.
    pub queue_depth: i64,
    /// Total claimable extra workers (threads − 1).
    pub workers_capacity: usize,
    /// Unclaimed workers sampled at the last request start.
    pub workers_available: i64,
}

/// A stateful query-serving engine: register databases, prepare queries,
/// then execute single requests or parallel batches.
///
/// # Examples
///
/// ```
/// use cqapx_engine::{Engine, EngineConfig, Request};
/// use cqapx_cq::parse_cq;
/// use cqapx_structures::Structure;
///
/// let engine = Engine::new(EngineConfig::default());
/// let db = engine.register_database("path", Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]));
/// let q = engine.prepare_query("ends", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
/// let resp = engine.execute(&Request::new(q, db));
/// assert_eq!(resp.answers.len(), 2);
/// ```
pub struct Engine {
    config: EngineConfig,
    catalog: RwLock<Catalog>,
    cache: ApproxCache,
    /// Per-`QueryId` memo of the cached approximation, so repeated
    /// requests for the same prepared query skip even the signature and
    /// isomorphism confirmation (O(1) hash lookup instead).
    approx_memo: Mutex<HashMap<QueryId, Arc<CachedApproximation>>>,
    stats: Mutex<EngineStats>,
    /// The engine-wide worker budget ([`EngineConfig::threads`] total
    /// workers): batch execution claims workers from it and every
    /// request's evaluation claims morsel workers from the remainder.
    budget: ThreadBudget,
    /// Tiered instrumentation (level copied from the config).
    metrics: EngineMetrics,
    /// Resolved per-database materialization-cache byte budget
    /// ([`EngineConfig::mat_cache_budget_bytes`] else
    /// `CQAPX_CACHE_BUDGET`; `0` = unbounded), applied to every
    /// database at registration.
    mat_budget: usize,
    /// Outstanding admitted requests — the queue depth admission
    /// control compares against [`EngineConfig::max_queue_depth`].
    /// Incremented at submission (before any planning), decremented
    /// when the request finishes.
    inflight: AtomicUsize,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let threads = if config.threads == 0 {
            env_threads().unwrap_or_else(default_threads)
        } else {
            config.threads
        };
        let metrics = EngineMetrics::new(config.metrics);
        let env_budget = crate::memory::env_cache_budget();
        let mat_budget = config.mat_cache_budget_bytes.or(env_budget).unwrap_or(0);
        let approx_budget = config.approx_cache_budget_bytes.or(env_budget).unwrap_or(0);
        let cache = ApproxCache::new();
        cache.set_budget_bytes(approx_budget);
        Engine {
            config,
            catalog: RwLock::new(Catalog::new()),
            cache,
            approx_memo: Mutex::new(HashMap::new()),
            stats: Mutex::new(EngineStats::default()),
            budget: ThreadBudget::new(threads),
            metrics,
            mat_budget,
            inflight: AtomicUsize::new(0),
        }
    }

    /// The engine-wide thread budget (total workers = capacity + 1).
    pub fn thread_budget(&self) -> &ThreadBudget {
        &self.budget
    }

    /// Registers a database: scans statistics, builds the domain
    /// dictionary, and applies the resolved materialization-cache byte
    /// budget (see [`EngineConfig::mat_cache_budget_bytes`]).
    pub fn register_database(&self, name: impl Into<String>, s: Structure) -> DbId {
        let mut catalog = self.catalog.write().expect("catalog lock poisoned");
        let id = catalog.register_database(name, s);
        if self.mat_budget > 0 {
            if let Some(entry) = catalog.database(id) {
                entry.materialized.set_budget_bytes(self.mat_budget);
            }
        }
        id
    }

    /// Prepares a query (computes shape; compiles Yannakakis if acyclic).
    pub fn prepare_query(&self, name: impl Into<String>, q: cqapx_cq::ConjunctiveQuery) -> QueryId {
        self.catalog
            .write()
            .expect("catalog lock poisoned")
            .prepare_query(name, q)
    }

    /// The catalog entry behind a database id: the immutable snapshot,
    /// its statistics, and its materialization cache.
    pub fn database(&self, id: DbId) -> Option<Arc<DatabaseEntry>> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .database(id)
    }

    /// Looks up a registered database by name.
    pub fn database_by_name(&self, name: &str) -> Option<DbId> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .database_by_name(name)
    }

    /// Looks up a prepared query by name.
    pub fn query_by_name(&self, name: &str) -> Option<QueryId> {
        self.catalog
            .read()
            .expect("catalog lock poisoned")
            .query_by_name(name)
    }

    /// The approximation cache (hit/miss counters, size).
    pub fn cache(&self) -> &ApproxCache {
        &self.cache
    }

    /// A snapshot of the aggregate statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.lock().expect("stats lock poisoned").clone()
    }

    /// The level the engine records at.
    pub fn metrics_level(&self) -> MetricsLevel {
        self.metrics.level
    }

    /// A consistent point-in-time copy of everything measured: counters
    /// plus latency quantiles, per-database cache outcomes, solver and
    /// operator activity, and occupancy.
    pub fn snapshot(&self) -> StatsSnapshot {
        let m = &self.metrics;
        // Memory occupancy comes from the caches themselves (not the
        // sampled gauges), so it is authoritative at every metrics
        // level. Superseded registrations of a name are folded into
        // the live entry's slot last, so the live entry wins.
        let mut mat_bytes = BTreeMap::new();
        let mut mat_evictions = BTreeMap::new();
        let mut dict_sizes = BTreeMap::new();
        {
            let catalog = self.catalog.read().expect("catalog lock poisoned");
            for d in catalog.databases() {
                mat_bytes.insert(d.name.clone(), d.materialized.resident_bytes() as u64);
                mat_evictions.insert(d.name.clone(), d.materialized.evictions());
                dict_sizes.insert(d.name.clone(), d.structure.domain_dict().len() as u64);
            }
        }
        let bitmap_stats = cqapx_cq::eval::bitmap_stats();
        let packed_stats = cqapx_cq::eval::packed_stats();
        StatsSnapshot {
            counters: self.stats(),
            level: m.level,
            class_latency: m.class_latency.snapshot(),
            db_latency: m.db_latency.snapshot(),
            approx_cache_by_db: m.approx_cache_by_db.snapshot(),
            mat_cache_by_db: m.mat_cache_by_db.snapshot(),
            mat_cache_bytes_by_db: mat_bytes,
            mat_cache_evictions_by_db: mat_evictions,
            dict_size_by_db: dict_sizes,
            mat_cache_budget_bytes: self.mat_budget as u64,
            approx_cache_bytes: self.cache.resident_bytes() as u64,
            approx_cache_budget_bytes: self.cache.budget_bytes() as u64,
            approx_cache_evictions: self.cache.evictions(),
            solver_nodes: m.solver_nodes.get(),
            solver_revisions: m.solver_revisions.get(),
            solver_budget_exhaustions: m.solver_budget_exhaustions.get(),
            op_micros: m.op_micros.snapshot(),
            op_rows: m.op_rows.snapshot(),
            bag_build_latency: m.bag_build.snapshot(),
            bitmap_builds: bitmap_stats.builds,
            bitmap_probes: bitmap_stats.probes,
            bitmap_resident_bytes: bitmap_stats.resident_bytes as u64,
            packed_builds: packed_stats.builds,
            packed_rows: packed_stats.rows,
            queue_depth: self.inflight.load(Ordering::Relaxed) as i64,
            workers_capacity: self.budget.capacity(),
            workers_available: m.workers_available.get(),
        }
    }

    /// Zeroes the aggregate counters and every histogram/counter the
    /// metrics layer holds (labels stay interned; buffered trace events
    /// stay until drained). Serving epochs — warmup vs measurement —
    /// call this between phases so distributions don't accumulate
    /// across them. Quiesce in-flight batches first: resetting under
    /// concurrent recorders loses those increments, and a degrading
    /// engine forgets the p99 it predicts from.
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("stats lock poisoned") = EngineStats::default();
        self.metrics.reset();
    }

    /// Takes every buffered `Trace`-level event, oldest first (empty
    /// below [`MetricsLevel::Trace`]).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.metrics.trace.drain()
    }

    /// Admission control at submission time: count this request against
    /// the queue and decide whether it may run. `Err((depth, limit))`
    /// means it must be shed (and it no longer counts).
    fn admit(&self) -> Result<(), (usize, usize)> {
        let depth = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        if self.metrics.level.at_least(MetricsLevel::Counters) {
            self.metrics.queue_depth.set(depth as i64);
        }
        match self.config.max_queue_depth {
            Some(limit) if depth > limit => {
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                Err((depth, limit))
            }
            _ => Ok(()),
        }
    }

    /// Marks an admitted request finished.
    fn depart(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// The response of a request rejected at admission: nothing was
    /// planned or evaluated, the answer set is empty (vacuously sound).
    fn shed_response(
        &self,
        q: &PreparedQuery,
        d: &DatabaseEntry,
        depth: usize,
        limit: usize,
    ) -> Response {
        let r = Response {
            answers: BTreeSet::new(),
            status: ResponseStatus::Shed,
            plan: PlanKind::Shed,
            decomposition_width: None,
            cache_hit: None,
            mat_cache: MatCacheStats::default(),
            wall: Duration::ZERO,
            decision: PlanDecision {
                kind: PlanKind::Shed,
                est_naive_cost: 0.0,
                est_decomposed_cost: None,
                decomposition_width: None,
                naive_budget: self.config.naive_cost_budget,
                bag_strategies: Vec::new(),
                reason: PlanReason::QueueFull(depth, limit),
            },
            note: ReasonNote::None,
        };
        self.note_response(q, d, &r, None, None);
        r
    }

    /// Executes one request synchronously.
    pub fn execute(&self, req: &Request) -> Response {
        let (q, d) = self.resolve(req);
        let resp = match self.admit() {
            Ok(()) => {
                let r = self.run(req, &q, &d);
                self.depart();
                r
            }
            Err((depth, limit)) => self.shed_response(&q, &d, depth, limit),
        };
        self.record(&resp);
        resp
    }

    /// Executes a batch in parallel (scoped worker threads, input order
    /// preserved). Each request carries its own deadline.
    ///
    /// Batch workers are claimed from the engine's [`ThreadBudget`];
    /// whatever the batch does not claim (fewer requests than threads)
    /// stays available for intra-query parallelism inside the running
    /// requests, so batch-level and morsel-level fan-out always share
    /// the one configured core budget.
    ///
    /// Admission control sees the whole backlog: every request counts
    /// against the queue at submission (here, in input order), so with
    /// [`EngineConfig::max_queue_depth`] set, a batch deeper than the
    /// remaining headroom has its tail shed deterministically — those
    /// responses come back [`ResponseStatus::Shed`] without planning or
    /// evaluation.
    pub fn execute_batch(&self, reqs: &[Request]) -> Vec<Response> {
        // A resolved request plus its admission verdict: `Some((depth,
        // limit))` marks it shed at submission.
        type Admitted = (
            Request,
            Arc<PreparedQuery>,
            Arc<DatabaseEntry>,
            Option<(usize, usize)>,
        );
        let work: Vec<Admitted> = reqs
            .iter()
            .map(|r| {
                let (q, d) = self.resolve(r);
                (r.clone(), q, d, self.admit().err())
            })
            .collect();
        let lease = self.budget.claim(work.len().saturating_sub(1));
        let responses = parallel_map(work, lease.workers(), |(req, q, d, shed)| match shed {
            Some((depth, limit)) => self.shed_response(&q, &d, depth, limit),
            None => {
                let r = self.run(&req, &q, &d);
                self.depart();
                r
            }
        });
        drop(lease);
        for r in &responses {
            self.record(r);
        }
        responses
    }

    /// Exact membership check `ā ∈ Q(D)` — the on-demand refinement for
    /// answers not already certain: a single pinned homomorphism search
    /// on the prepared query's compiled plan, far cheaper than
    /// materializing `Q(D)`.
    pub fn refine_contains(&self, query: QueryId, db: DbId, answer: &[Element]) -> bool {
        let (q, d) = self.resolve(&Request::new(query, db));
        q.naive.contains_answer(&d.structure, answer)
    }

    /// # Panics
    ///
    /// Panics on unknown ids and on a (query, database) pair over
    /// different vocabularies — planning with another vocabulary's
    /// relation statistics would silently mis-cost, and evaluation would
    /// fail deep inside the join; a serving API should reject the pair
    /// at the door with a clear message.
    fn resolve(&self, req: &Request) -> (Arc<PreparedQuery>, Arc<DatabaseEntry>) {
        let catalog = self.catalog.read().expect("catalog lock poisoned");
        let q = catalog
            .query(req.query)
            .unwrap_or_else(|| panic!("unknown query id {:?}", req.query));
        let d = catalog
            .database(req.db)
            .unwrap_or_else(|| panic!("unknown database id {:?}", req.db));
        assert_eq!(
            q.query().vocabulary(),
            d.structure.vocabulary(),
            "query {:?} and database {:?} have different vocabularies",
            q.name,
            d.name
        );
        (q, d)
    }

    fn record(&self, r: &Response) {
        let mut s = self.stats.lock().expect("stats lock poisoned");
        s.requests += 1;
        match r.status {
            ResponseStatus::Complete => s.complete += 1,
            ResponseStatus::CertainOnly => s.certain_only += 1,
            ResponseStatus::TimedOut => s.timed_out += 1,
            ResponseStatus::Degraded => s.degraded += 1,
            ResponseStatus::Shed => s.shed += 1,
        }
        match r.plan {
            PlanKind::Yannakakis => s.plan_yannakakis += 1,
            PlanKind::Decomposed => s.plan_decomposed += 1,
            PlanKind::Naive => s.plan_naive += 1,
            PlanKind::Sandwich => s.plan_sandwich += 1,
            PlanKind::Shed => {} // not a plan; counted via `shed`
        }
        match r.cache_hit {
            Some(true) => s.cache_hits += 1,
            Some(false) => s.cache_misses += 1,
            None => {}
        }
        s.mat_hits += r.mat_cache.hits as u64;
        s.mat_misses += r.mat_cache.misses as u64;
        s.bag_builds_binary += r.mat_cache.binary_bag_builds as u64;
        s.bag_builds_wcoj += r.mat_cache.wcoj_bag_builds as u64;
        s.answers += r.answers.len() as u64;
        s.busy += r.wall;
    }

    fn run(&self, req: &Request, q: &PreparedQuery, d: &DatabaseEntry) -> Response {
        let start = Instant::now();
        let level = self.metrics.level;
        if level.at_least(MetricsLevel::Counters) {
            self.metrics
                .workers_available
                .set(self.budget.available() as i64);
        }
        let deadline = req
            .timeout
            .or(self.config.default_timeout)
            .map(|t| start + t);
        // One shared step budget per request: the naive-join searches a
        // request fans into all charge the same counter, so the join
        // phase as a whole — not each sub-search — honors the deadline.
        // (As documented on `EngineConfig::default_timeout`, the
        // deadline bounds join evaluation; in-class approximation
        // evaluators are tractable by construction and run unbudgeted.)
        let budget = deadline.map(|dl| {
            let remaining_ms = dl
                .saturating_duration_since(Instant::now())
                .as_millis()
                .max(1) as u64;
            SearchBudget::new(remaining_ms.saturating_mul(self.config.nodes_per_ms))
        });
        let decision: PlanDecision = choose_plan(
            &q.shape,
            q.decomposed.as_deref(),
            d,
            self.config.naive_cost_budget,
        );
        let mut note = ReasonNote::None;
        let mut mat_cache = MatCacheStats::default();
        let mut solver: Option<HomSearchStats> = None;
        let mut profile: Option<EvalProfile> = level
            .at_least(MetricsLevel::Debug)
            .then(EvalProfile::default);

        // Deadline-aware degradation: when the measured p99 of this
        // query class says the exact plan will blow the deadline anyway,
        // don't start it — serve the approximation's certain answers up
        // front (a sound subset, delivered in time) instead of timing
        // out. Only the tiers whose runtime the deadline actually
        // threatens are considered: the naive join (unless the answer is
        // provably empty, which is instant) and the sandwich in exact
        // mode (whose exact phase is the same naive join).
        let mut degrade: Option<(u64, u64)> = None;
        if let Some(dl) = deadline {
            let threatened = match decision.kind {
                PlanKind::Naive => decision.est_naive_cost > 0.0,
                PlanKind::Sandwich => req.mode == EvalMode::Exact,
                _ => false,
            };
            if threatened && level.at_least(MetricsLevel::Counters) {
                let label = if decision.kind == PlanKind::Naive {
                    "naive"
                } else {
                    "sandwich"
                };
                let h = self.metrics.class_latency.with(label).snapshot();
                let headroom_us = dl.saturating_duration_since(Instant::now()).as_micros() as u64;
                if h.count >= DEGRADE_MIN_SAMPLES && h.p99 > headroom_us {
                    degrade = Some((h.p99, headroom_us));
                }
            }
        }

        let (answers, status, cache_hit) = if let Some((p99_us, headroom_us)) = degrade {
            note = ReasonNote::Degraded {
                p99_us,
                headroom_us,
            };
            let (certain, hit, mstats) = self.certain_answers(req.query, q, d);
            mat_cache.add(mstats);
            (certain, ResponseStatus::Degraded, Some(hit))
        } else {
            match decision.kind {
                PlanKind::Yannakakis => {
                    let plan = q
                        .yannakakis
                        .as_ref()
                        .expect("acyclic prepared queries carry a Yannakakis plan");
                    let (answers, mstats) = plan.eval_cached_budget_profiled(
                        &d.structure,
                        Some(&d.materialized),
                        &self.budget,
                        profile.as_mut(),
                    );
                    mat_cache.add(mstats);
                    (answers, ResponseStatus::Complete, None)
                }
                PlanKind::Decomposed => {
                    // Polynomial for the prepared width, like Yannakakis:
                    // runs unbudgeted under the deadline policy.
                    let plan = q
                        .decomposed
                        .as_ref()
                        .expect("decomposed tier requires a compiled decomposition");
                    let (answers, mstats) = plan.eval_cached_budget_profiled(
                        &d.structure,
                        Some(&d.materialized),
                        &self.budget,
                        profile.as_mut(),
                    );
                    mat_cache.add(mstats);
                    (answers, ResponseStatus::Complete, None)
                }
                PlanKind::Shed => unreachable!("the planner never sheds; admission control does"),
                PlanKind::Naive => {
                    let (answers, timed_out, stats) =
                        self.eval_naive_bounded(&q.naive, &d.structure, deadline, budget.as_ref());
                    solver = Some(stats);
                    let status = if timed_out {
                        ResponseStatus::TimedOut
                    } else {
                        ResponseStatus::Complete
                    };
                    (answers, status, None)
                }
                PlanKind::Sandwich => match req.mode {
                    EvalMode::CertainOnly => {
                        // Certain answers: the union over all →-maximal
                        // in-class approximations, each a sound
                        // under-approximation.
                        let (certain, hit, mstats) = self.certain_answers(req.query, q, d);
                        mat_cache.add(mstats);
                        (certain, ResponseStatus::CertainOnly, Some(hit))
                    }
                    EvalMode::Exact => {
                        // Exact mode wants Q(D) itself, so run the full join
                        // under the deadline first; the approximation rescues
                        // a cut-short join with its certain answers.
                        note = ReasonNote::ExactFallback;
                        let (exact, timed_out, stats) = self.eval_naive_bounded(
                            &q.naive,
                            &d.structure,
                            deadline,
                            budget.as_ref(),
                        );
                        solver = Some(stats);
                        if timed_out {
                            // Already over the deadline: only a *cached*
                            // approximation may be consulted — starting the
                            // single-exponential search here would blow the
                            // timeout by orders of magnitude.
                            let memoized = self
                                .approx_memo
                                .lock()
                                .expect("memo lock poisoned")
                                .get(&req.query)
                                .cloned();
                            let class = self.config.approx_class.as_class();
                            match memoized.or_else(|| {
                                self.cache.lookup_only(
                                    q.tableau(),
                                    class.as_ref(),
                                    &self.config.approx_options,
                                )
                            }) {
                                Some(cached) => {
                                    let mut answers = exact;
                                    for e in &cached.evaluators {
                                        let (certain, mstats) = e.eval_with_cache(
                                            &d.structure,
                                            &d.materialized,
                                            &self.budget,
                                        );
                                        answers.extend(certain);
                                        mat_cache.add(mstats);
                                    }
                                    (answers, ResponseStatus::TimedOut, Some(true))
                                }
                                None => (exact, ResponseStatus::TimedOut, None),
                            }
                        } else {
                            (exact, ResponseStatus::Complete, None)
                        }
                    }
                },
            }
        };
        let plan = if status == ResponseStatus::Degraded {
            PlanKind::Sandwich
        } else {
            decision.kind
        };
        let r = Response {
            answers,
            status,
            plan,
            decomposition_width: decision.decomposition_width,
            cache_hit,
            mat_cache,
            wall: start.elapsed(),
            decision,
            note,
        };
        self.note_response(q, d, &r, solver, profile);
        r
    }

    /// Fold one finished response into the metrics registries, honoring
    /// the configured [`MetricsLevel`] tier by tier: latency histograms
    /// and cache counters at `Counters`, solver/operator internals at
    /// `Debug`, a structured per-request event at `Trace`.
    fn note_response(
        &self,
        q: &PreparedQuery,
        d: &DatabaseEntry,
        r: &Response,
        solver: Option<HomSearchStats>,
        profile: Option<EvalProfile>,
    ) {
        let m = &self.metrics;
        if !m.level.at_least(MetricsLevel::Counters) {
            return;
        }
        let us = r.wall.as_micros() as u64;
        m.class_latency.with(class_label(r)).record(us);
        m.db_latency.with(&d.name).record(us);
        m.mat_cache_bytes
            .set(d.materialized.resident_bytes() as i64);
        m.approx_cache_bytes.set(self.cache.resident_bytes() as i64);
        match r.cache_hit {
            Some(true) => m.approx_cache_by_db.with(&format!("{}/hits", d.name)).inc(),
            Some(false) => m
                .approx_cache_by_db
                .with(&format!("{}/misses", d.name))
                .inc(),
            None => {}
        }
        if r.mat_cache.hits > 0 {
            m.mat_cache_by_db
                .with(&format!("{}/hits", d.name))
                .add(r.mat_cache.hits as u64);
        }
        if r.mat_cache.misses > 0 {
            m.mat_cache_by_db
                .with(&format!("{}/misses", d.name))
                .add(r.mat_cache.misses as u64);
        }
        if m.level.at_least(MetricsLevel::Debug) {
            if let Some(s) = solver {
                m.solver_nodes.add(s.nodes);
                m.solver_revisions.add(s.revisions);
                if s.budget_exhausted {
                    m.solver_budget_exhaustions.inc();
                }
            }
            if let Some(p) = &profile {
                for (op, micros, rows) in p.by_op() {
                    m.op_micros.with(op).add(micros);
                    m.op_rows.with(op).add(rows as u64);
                }
            }
            if r.mat_cache.binary_bag_builds > 0 {
                m.bag_build.with("binary").record(r.mat_cache.binary_bag_us);
            }
            if r.mat_cache.wcoj_bag_builds > 0 {
                m.bag_build.with("wcoj").record(r.mat_cache.wcoj_bag_us);
            }
        }
        if m.level.at_least(MetricsLevel::Trace) {
            m.trace.emit(TraceEvent {
                at_us: m.epoch.elapsed().as_micros() as u64,
                name: "request",
                fields: vec![
                    ("query", q.name.clone()),
                    ("db", d.name.clone()),
                    ("class", class_label(r).to_string()),
                    ("status", format!("{:?}", r.status)),
                    ("answers", r.answers.len().to_string()),
                    ("wall_us", us.to_string()),
                ],
            });
        }
    }

    /// The cached approximation for a prepared query: first a per-id
    /// memo (O(1)), then the isomorphism-keyed shared cache. Memo hits
    /// count as cache hits in the response/stats (the search was
    /// skipped), without touching `ApproxCache`'s lookup counters.
    fn approximation_of(
        &self,
        qid: QueryId,
        q: &PreparedQuery,
    ) -> (Arc<CachedApproximation>, bool) {
        if let Some(c) = self
            .approx_memo
            .lock()
            .expect("memo lock poisoned")
            .get(&qid)
        {
            return (Arc::clone(c), true);
        }
        let class = self.config.approx_class.as_class();
        let (cached, hit) =
            self.cache
                .get_or_compute(q.tableau(), class.as_ref(), &self.config.approx_options);
        self.approx_memo
            .lock()
            .expect("memo lock poisoned")
            .insert(qid, Arc::clone(&cached));
        (cached, hit)
    }

    /// The certain answers of the cached approximation: the union of
    /// `Q'(D)` over every →-maximal in-class approximation `Q' ⊆ Q`,
    /// evaluated through the database's materialization cache. Returns
    /// the cache-hit flag of the lookup and the materialization outcome.
    fn certain_answers(
        &self,
        qid: QueryId,
        q: &PreparedQuery,
        d: &DatabaseEntry,
    ) -> (BTreeSet<Vec<Element>>, bool, MatCacheStats) {
        let (cached, hit) = self.approximation_of(qid, q);
        let mut answers: BTreeSet<Vec<Element>> = BTreeSet::new();
        let mut mat = MatCacheStats::default();
        for e in &cached.evaluators {
            let (certain, mstats) = e.eval_with_cache(&d.structure, &d.materialized, &self.budget);
            answers.extend(certain);
            mat.add(mstats);
        }
        (answers, hit, mat)
    }

    /// Naive evaluation under a deadline: answers stream out of the
    /// prepared query's compiled [`NaivePlan`]; the deadline is checked
    /// at every found answer, and the request's shared [`SearchBudget`]
    /// (the remaining wall time converted into solver steps) stops even
    /// answer-free subtrees near the deadline. Returns
    /// `(answers, timed_out, solver_stats)`; answers are sound either
    /// way.
    fn eval_naive_bounded(
        &self,
        plan: &NaivePlan,
        d: &Structure,
        deadline: Option<Instant>,
        budget: Option<&SearchBudget>,
    ) -> (BTreeSet<Vec<Element>>, bool, HomSearchStats) {
        let mut answers = BTreeSet::new();
        let mut timed_out = false;
        let stats = plan.for_each_answer(d, budget, |a| {
            if deadline.is_some_and(|dl| Instant::now() >= dl) {
                timed_out = true;
                return ControlFlow::Break(());
            }
            answers.insert(a.to_vec());
            ControlFlow::Continue(())
        });
        let timed_out = timed_out || stats.budget_exhausted;
        (answers, timed_out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_cq::eval::naive::eval_naive;
    use cqapx_cq::parse_cq;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default())
    }

    #[test]
    fn acyclic_query_served_by_yannakakis() {
        let e = engine();
        let db = e.register_database("p", Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]));
        let q = e.prepare_query("ends", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        let r = e.execute(&Request::new(q, db));
        assert_eq!(r.plan, PlanKind::Yannakakis);
        assert_eq!(r.status, ResponseStatus::Complete);
        assert_eq!(r.answers.len(), 2);
        assert_eq!(e.stats().plan_yannakakis, 1);
    }

    #[test]
    fn snapshot_reports_cache_memory_and_dictionaries() {
        // `Some(0)` pins both caches unbounded even when the test
        // process runs under a `CQAPX_CACHE_BUDGET` (the CI budget job
        // runs the whole suite that way).
        let e = Engine::new(EngineConfig {
            mat_cache_budget_bytes: Some(0),
            approx_cache_budget_bytes: Some(0),
            ..EngineConfig::default()
        });
        let db = e.register_database("p", Structure::digraph(4, &[(0, 1), (1, 2), (2, 3)]));
        let q = e.prepare_query("ends", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        e.execute(&Request::new(q, db));
        let snap = e.snapshot();
        // Unbounded default: relations stay resident, nothing evicts.
        assert_eq!(snap.mat_cache_budget_bytes, 0);
        assert!(snap.mat_cache_bytes_by_db["p"] > 0);
        assert_eq!(snap.mat_cache_evictions_by_db["p"], 0);
        // digraph(4, path) has the full universe active: dictionary of 4.
        assert_eq!(snap.dict_size_by_db["p"], 4);
        assert_eq!(snap.approx_cache_budget_bytes, 0);
        assert_eq!(snap.approx_cache_evictions, 0);
    }

    #[test]
    fn tiny_mat_budget_stays_correct_and_reports_evictions() {
        let bounded = Engine::new(EngineConfig {
            mat_cache_budget_bytes: Some(1), // every landing evicts
            ..EngineConfig::default()
        });
        let unbounded = engine();
        for e in [&bounded, &unbounded] {
            e.register_database(
                "p",
                Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
            );
            e.prepare_query("ends", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        }
        let run = |e: &Engine| {
            let q = e.query_by_name("ends").unwrap();
            let db = e.database_by_name("p").unwrap();
            (0..3)
                .map(|_| e.execute(&Request::new(q, db)).answers)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&bounded), run(&unbounded));
        let snap = bounded.snapshot();
        assert_eq!(snap.mat_cache_budget_bytes, 1);
        assert!(snap.mat_cache_evictions_by_db["p"] >= 1);
        assert!(snap.mat_cache_bytes_by_db["p"] <= 1);
    }

    #[test]
    #[should_panic(expected = "different vocabularies")]
    fn vocabulary_mismatch_rejected_at_the_door() {
        use cqapx_structures::{StructureBuilder, Vocabulary};
        let e = engine();
        let v = Vocabulary::new(vec![("R", 3)]);
        let r = v.rel("R").unwrap();
        let mut b = StructureBuilder::new(v, 3);
        b.add(r, &[0, 1, 2]);
        let db = e.register_database("ternary", b.finish());
        // Graph-vocabulary query against a ternary-vocabulary database.
        let q = e.prepare_query("edge", parse_cq("Q(x, y) :- E(x, y)").unwrap());
        e.execute(&Request::new(q, db));
    }

    #[test]
    fn cyclic_bounded_treewidth_served_decomposed_exactly() {
        let e = engine();
        let db = e.register_database(
            "tri",
            Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]),
        );
        let q = e.prepare_query(
            "triangle",
            parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap(),
        );
        let r = e.execute(&Request::new(q, db));
        assert_eq!(r.plan, PlanKind::Decomposed);
        assert_eq!(r.decomposition_width, Some(2));
        assert_eq!(r.status, ResponseStatus::Complete);
        assert_eq!(r.answers.len(), 1); // Boolean true: the empty tuple
        assert_eq!(e.stats().plan_decomposed, 1);
        // The bag materializations landed in the database's cache.
        assert!(r.mat_cache.misses > 0);
    }

    #[test]
    fn cyclic_above_width_limit_served_naive_exactly() {
        let e = engine();
        // K5 (treewidth 4) on its own clique digraph: cyclic, no
        // decomposed plan at the prepare-time width limit, cheap here.
        let edges: Vec<(u32, u32)> = (0..5u32)
            .flat_map(|u| (0..5u32).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        let db = e.register_database("k5", Structure::digraph(5, &edges));
        let k5 =
            "Q() :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)";
        let q = e.prepare_query("k5", parse_cq(k5).unwrap());
        let r = e.execute(&Request::new(q, db));
        assert_eq!(r.plan, PlanKind::Naive);
        assert_eq!(r.decomposition_width, None);
        assert_eq!(r.status, ResponseStatus::Complete);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn sandwich_serves_certain_answers_and_caches() {
        let e = Engine::new(EngineConfig {
            naive_cost_budget: 0.0, // force the sandwich
            ..EngineConfig::default()
        });
        let db = e.register_database("loops", Structure::digraph(3, &[(0, 0), (0, 1), (1, 2)]));
        let q = e.prepare_query(
            "triangle",
            parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap(),
        );
        let req = Request {
            query: q,
            db,
            mode: EvalMode::CertainOnly,
            timeout: None,
        };
        let r1 = e.execute(&req);
        assert_eq!(r1.plan, PlanKind::Sandwich);
        assert_eq!(r1.status, ResponseStatus::CertainOnly);
        assert_eq!(r1.cache_hit, Some(false));
        // The TW(1)-approximation of the triangle is E(x,x); the loop at 0
        // makes it true — a certain answer (0→0→0 is a real triangle hom).
        assert_eq!(r1.answers.len(), 1);
        let r2 = e.execute(&req);
        assert_eq!(r2.cache_hit, Some(true));
        assert_eq!(r2.answers, r1.answers);
        assert_eq!(e.stats().cache_hits, 1);
    }

    #[test]
    fn sandwich_exact_mode_refines_to_exact() {
        let e = Engine::new(EngineConfig {
            naive_cost_budget: 0.0,
            ..EngineConfig::default()
        });
        let s = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (3, 3)]);
        let db = e.register_database("d", s.clone());
        let query = parse_cq("Q(x) :- E(x,y), E(y,z), E(z,x)").unwrap();
        let q = e.prepare_query("tri-x", query.clone());
        let r = e.execute(&Request::new(q, db));
        assert_eq!(r.plan, PlanKind::Sandwich);
        assert_eq!(r.status, ResponseStatus::Complete);
        assert_eq!(r.answers, eval_naive(&query, &s));
        assert_eq!(r.answers.len(), 4); // 0,1,2 from the triangle + 3's loop
    }

    #[test]
    fn batch_runs_in_parallel_and_aggregates_stats() {
        let e = engine();
        let db = e.register_database(
            "p",
            Structure::digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
        );
        let q1 = e.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        let q2 = e.prepare_query("tri", parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap());
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request::new(if i % 2 == 0 { q1 } else { q2 }, db))
            .collect();
        let rs = e.execute_batch(&reqs);
        assert_eq!(rs.len(), 8);
        for (i, r) in rs.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(r.answers.len(), 3);
            } else {
                assert!(r.answers.is_empty()); // no triangle in a path
            }
        }
        let stats = e.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.plan_yannakakis, 4);
        assert_eq!(stats.plan_decomposed, 4); // the triangle has treewidth 2
    }

    #[test]
    fn timeout_yields_sound_partial_answers() {
        let e = Engine::new(EngineConfig {
            nodes_per_ms: 1, // starve the search
            ..EngineConfig::default()
        });
        // Dense-ish digraph so the search has real work. The query is a
        // K5 clique: treewidth 4 exceeds the decomposed-tier width
        // limit, so the planner sends it to the (starved) naive join.
        let edges: Vec<(u32, u32)> = (0..15u32)
            .flat_map(|u| {
                (0..15u32)
                    .filter(move |&v| v != u && (u + v) % 3 != 0)
                    .map(move |v| (u, v))
            })
            .collect();
        let db = e.register_database("dense", Structure::digraph(15, &edges));
        let query = parse_cq(
            "Q(a) :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)",
        )
        .unwrap();
        let q = e.prepare_query("k5-a", query.clone());
        let full = eval_naive(&query, &Structure::digraph(15, &edges));
        let req = Request {
            query: q,
            db,
            mode: EvalMode::Exact,
            timeout: Some(Duration::from_millis(1)),
        };
        let r = e.execute(&req);
        // Whatever came back is sound.
        for a in &r.answers {
            assert!(full.contains(a));
        }
        if r.status == ResponseStatus::TimedOut {
            assert!(r.answers.len() <= full.len());
        } else {
            assert_eq!(r.answers, full);
        }
    }

    #[test]
    fn refine_contains_checks_membership_on_demand() {
        let e = engine();
        let s = Structure::digraph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let db = e.register_database("d", s);
        let q = e.prepare_query("tri-x", parse_cq("Q(x) :- E(x,y), E(y,z), E(z,x)").unwrap());
        assert!(e.refine_contains(q, db, &[0]));
        assert!(!e.refine_contains(q, db, &[3]));
    }

    #[test]
    fn stats_display_renders() {
        let e = engine();
        let db = e.register_database("p", Structure::digraph(2, &[(0, 1)]));
        let q = e.prepare_query("edge", parse_cq("Q(x, y) :- E(x, y)").unwrap());
        e.execute(&Request::new(q, db));
        let text = e.stats().to_string();
        assert!(text.contains("requests"));
        assert!(text.contains("hit rate"));
    }

    fn engine_at(level: MetricsLevel) -> Engine {
        Engine::new(EngineConfig {
            metrics: level,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn batch_over_queue_limit_sheds_the_tail_deterministically() {
        let e = Engine::new(EngineConfig {
            metrics: MetricsLevel::Counters,
            max_queue_depth: Some(2),
            ..EngineConfig::default()
        });
        let db = e.register_database("p", Structure::digraph(3, &[(0, 1), (1, 2)]));
        let q = e.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        let reqs: Vec<Request> = (0..5).map(|_| Request::new(q, db)).collect();
        let rs = e.execute_batch(&reqs);
        assert_eq!(rs.len(), 5);
        // Admission sees the batch in input order: the first two fit,
        // the remaining three are shed without planning or evaluation.
        for r in &rs[..2] {
            assert_eq!(r.status, ResponseStatus::Complete);
            assert_eq!(r.answers.len(), 1);
        }
        for r in &rs[2..] {
            assert_eq!(r.status, ResponseStatus::Shed);
            assert_eq!(r.plan, PlanKind::Shed);
            assert!(r.answers.is_empty());
            assert!(r.plan_reason().contains("admission control"));
        }
        let s = e.stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.shed, 3);
        assert_eq!(s.complete, 2);
        // Shed latencies land in their own class, not a plan tier's.
        assert_eq!(e.snapshot().class_latency["shed"].count, 3);
        // The queue drained: a fresh request is admitted again.
        assert_eq!(
            e.execute(&Request::new(q, db)).status,
            ResponseStatus::Complete
        );
    }

    // A cyclic query above the decomposed-tier width limit on a database
    // where it is genuinely expensive: the planner's naive tier, with
    // real work for the deadline to threaten.
    fn k5_on_dense(e: &Engine) -> (QueryId, DbId, Structure) {
        let edges: Vec<(u32, u32)> = (0..12u32)
            .flat_map(|u| {
                (0..12u32)
                    .filter(move |&v| v != u && (u + v) % 3 != 0)
                    .map(move |v| (u, v))
            })
            .collect();
        let s = Structure::digraph(12, &edges);
        let db = e.register_database("dense", s.clone());
        let k5 =
            "Q() :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)";
        let q = e.prepare_query("k5", parse_cq(k5).unwrap());
        (q, db, s)
    }

    #[test]
    fn predicted_deadline_miss_degrades_to_certain_answers() {
        let e = engine_at(MetricsLevel::Counters);
        let (q, db, s) = k5_on_dense(&e);
        let exact = {
            let query = parse_cq(
                "Q() :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)",
            )
            .unwrap();
            eval_naive(&query, &s)
        };
        // Warm the class histogram with unhurried exact runs.
        for _ in 0..DEGRADE_MIN_SAMPLES {
            let r = e.execute(&Request::new(q, db));
            assert_eq!(r.plan, PlanKind::Naive);
        }
        assert!(e.snapshot().class_latency["naive"].p99 > 0);
        // A deadline far below the measured p99: the engine should not
        // even start the join.
        let r = e.execute(&Request {
            query: q,
            db,
            mode: EvalMode::Exact,
            timeout: Some(Duration::from_nanos(1)),
        });
        assert_eq!(r.status, ResponseStatus::Degraded);
        assert_eq!(r.plan, PlanKind::Sandwich);
        assert!(r.plan_reason().contains("degraded"));
        for a in &r.answers {
            assert!(exact.contains(a), "degraded answers must stay sound");
        }
        let snap = e.snapshot();
        assert_eq!(snap.counters.degraded, 1);
        // Degraded latencies get their own class so they don't drag the
        // naive p99 the prediction reads.
        assert_eq!(snap.class_latency["degraded"].count, 1);
        assert_eq!(snap.class_latency["naive"].count, DEGRADE_MIN_SAMPLES);
    }

    #[test]
    fn metrics_level_none_records_nothing() {
        let e = engine_at(MetricsLevel::None);
        let db = e.register_database("p", Structure::digraph(3, &[(0, 1), (1, 2)]));
        let q = e.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        e.execute(&Request::new(q, db));
        let snap = e.snapshot();
        assert!(snap.class_latency.is_empty());
        assert!(snap.db_latency.is_empty());
        assert!(snap.mat_cache_by_db.is_empty());
        assert_eq!(snap.solver_nodes, 0);
        assert!(e.trace_events().is_empty());
        // Aggregate counters still work — they predate the metrics layer.
        assert_eq!(snap.counters.requests, 1);
    }

    #[test]
    fn debug_level_records_solver_and_operator_internals() {
        let e = engine_at(MetricsLevel::Debug);
        let (q, db, _) = k5_on_dense(&e);
        e.execute(&Request::new(q, db)); // naive tier → solver stats
        let hop = e.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        e.execute(&Request::new(hop, db)); // Yannakakis → operator profile
        let snap = e.snapshot();
        assert!(snap.solver_nodes > 0);
        assert!(snap.solver_revisions > 0);
        assert!(
            snap.op_rows.contains_key("semijoin"),
            "Yannakakis profile should count semijoin rows, got {:?}",
            snap.op_rows.keys().collect::<Vec<_>>()
        );
        assert!(snap.op_micros.contains_key("materialize"));
    }

    #[test]
    fn trace_level_buffers_one_event_per_request() {
        let e = engine_at(MetricsLevel::Trace);
        let db = e.register_database("p", Structure::digraph(3, &[(0, 1), (1, 2)]));
        let q = e.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        for _ in 0..3 {
            e.execute(&Request::new(q, db));
        }
        let events = e.trace_events();
        assert_eq!(events.len(), 3);
        for ev in &events {
            assert_eq!(ev.name, "request");
            let rendered = ev.to_string();
            assert!(rendered.contains("query=hop2"));
            assert!(rendered.contains("class=yannakakis"));
        }
        assert!(e.trace_events().is_empty(), "drain consumes the buffer");
    }

    #[test]
    fn reset_stats_starts_a_fresh_epoch() {
        let e = engine_at(MetricsLevel::Counters);
        let db = e.register_database("p", Structure::digraph(3, &[(0, 1), (1, 2)]));
        let q = e.prepare_query("hop2", parse_cq("Q(x, z) :- E(x, y), E(y, z)").unwrap());
        for _ in 0..4 {
            e.execute(&Request::new(q, db));
        }
        let warm = e.snapshot();
        assert_eq!(warm.counters.requests, 4);
        let h = &warm.class_latency["yannakakis"];
        assert_eq!(h.count, 4);
        assert!(h.p50 <= h.p99 && h.p99 <= h.max);
        e.reset_stats();
        let fresh = e.snapshot();
        assert_eq!(fresh.counters.requests, 0);
        assert!(fresh.class_latency.values().all(|h| h.count == 0));
        assert!(fresh.db_latency.values().all(|h| h.count == 0));
        assert!(fresh.mat_cache_by_db.values().all(|&c| c == 0));
    }
}
