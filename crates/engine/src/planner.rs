//! The cost-based planner: picks an evaluation strategy per
//! (prepared query, registered database) pair.
//!
//! Decision ladder (cheapest guarantee first):
//!
//! 1. **Yannakakis** — the query is acyclic: `O(|D|·|Q|)`, always best.
//! 2. **Naive backtracking** — the estimated join cost against *this*
//!    database's relation statistics fits the configured budget (small
//!    tableau, small database, or selective relations).
//! 3. **Approximation sandwich** — everything else: serve the certain
//!    answers `Q'(D)` of the cached `C`-approximation `Q' ⊆ Q`
//!    (guaranteed-correct under-approximation, tractable to evaluate),
//!    refining exactly only on demand.

use crate::catalog::DatabaseEntry;
use cqapx_cq::QueryShape;
use std::fmt;

/// The strategy chosen for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Semijoin full reducer + bottom-up joins on the join tree.
    Yannakakis,
    /// Backtracking join (homomorphism search from the tableau).
    Naive,
    /// Certain answers from the cached in-class approximation.
    Sandwich,
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanKind::Yannakakis => "yannakakis",
            PlanKind::Naive => "naive",
            PlanKind::Sandwich => "sandwich",
        })
    }
}

/// A plan choice with its cost rationale.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The chosen strategy.
    pub kind: PlanKind,
    /// Estimated cost of naive backtracking on this database (branch
    /// nodes, order of magnitude); `f64::INFINITY` when saturated.
    pub est_naive_cost: f64,
    /// One-line human-readable rationale.
    pub reason: String,
}

/// An order-of-magnitude upper estimate of backtracking-join work: the
/// minimum of the variable-assignment bound `adom^|vars|` and the
/// atom-by-atom bound `∏ |R_atom|`. Each atom's factor prefers the
/// **real cardinality of its cached materialization** (repeated-variable
/// filtering included) over the raw relation statistic, so estimates
/// tighten as the database's [`MaterializationCache`] warms up.
/// Saturates at `f64::INFINITY`.
///
/// [`MaterializationCache`]: cqapx_cq::eval::MaterializationCache
pub fn estimate_naive_cost(shape: &QueryShape, db: &DatabaseEntry) -> f64 {
    let adom = db.adom_size.max(1) as f64;
    let assignment_bound = adom.powi(shape.var_count.min(1_000) as i32);
    let mut atom_bound = 1.0_f64;
    let cached = db
        .materialized
        .peek_cardinalities(shape.atom_keys.iter().map(|(_, k)| k));
    for ((rel, _), peeked) in shape.atom_keys.iter().zip(cached) {
        let card = peeked
            .unwrap_or_else(|| db.rel_stats(*rel).cardinality)
            .max(1) as f64;
        atom_bound *= card;
        if !atom_bound.is_finite() {
            break;
        }
    }
    assignment_bound.min(atom_bound)
}

/// Chooses the strategy for `shape` against `db`, with `naive_budget`
/// bounding the estimated cost the naive join may incur.
pub fn choose_plan(shape: &QueryShape, db: &DatabaseEntry, naive_budget: f64) -> PlanDecision {
    if shape.acyclic {
        return PlanDecision {
            kind: PlanKind::Yannakakis,
            est_naive_cost: estimate_naive_cost(shape, db),
            reason: "query is acyclic: Yannakakis is O(|D|·|Q|)".into(),
        };
    }
    let est = estimate_naive_cost(shape, db);
    if est <= naive_budget {
        PlanDecision {
            kind: PlanKind::Naive,
            est_naive_cost: est,
            reason: format!(
                "cyclic but cheap here: est. {est:.1e} branch nodes ≤ budget {naive_budget:.1e}"
            ),
        }
    } else {
        PlanDecision {
            kind: PlanKind::Sandwich,
            est_naive_cost: est,
            reason: format!(
                "cyclic and expensive here (est. {est:.1e} > budget {naive_budget:.1e}): serving certain answers via the cached approximation"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use cqapx_cq::parse_cq;
    use cqapx_structures::Structure;

    fn shape(q: &str) -> QueryShape {
        QueryShape::of(&parse_cq(q).unwrap())
    }

    fn db(n: usize, edges: &[(u32, u32)]) -> std::sync::Arc<crate::catalog::DatabaseEntry> {
        let mut c = Catalog::new();
        let id = c.register_database("d", Structure::digraph(n, edges));
        c.database(id).unwrap()
    }

    #[test]
    fn acyclic_always_yannakakis() {
        let s = shape("Q(x) :- E(x,y), E(y,z)");
        let d = db(3, &[(0, 1), (1, 2)]);
        assert_eq!(choose_plan(&s, &d, 1e6).kind, PlanKind::Yannakakis);
        assert_eq!(choose_plan(&s, &d, 0.0).kind, PlanKind::Yannakakis);
    }

    #[test]
    fn cyclic_small_db_goes_naive() {
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = choose_plan(&s, &d, 1e6);
        assert_eq!(p.kind, PlanKind::Naive);
        assert!(p.est_naive_cost <= 27.0 + 1e-9);
    }

    #[test]
    fn cyclic_large_db_goes_sandwich() {
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = choose_plan(&s, &d, 10.0);
        assert_eq!(p.kind, PlanKind::Sandwich);
    }

    #[test]
    fn estimates_use_relation_stats() {
        // 2 tuples → atom bound 2^3 = 8 beats adom^3 = 27.
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2)]);
        assert!(estimate_naive_cost(&s, &d) <= 8.0 + 1e-9);
    }
}
