//! The cost-based planner: picks an evaluation strategy per
//! (prepared query, registered database) pair.
//!
//! Decision ladder (cheapest guarantee first):
//!
//! 1. **Yannakakis** — the query is acyclic: `O(|D|·|Q|)`, always best.
//! 2. **Decomposed** — the query is cyclic but has a compiled
//!    bounded-treewidth plan, and the estimated bag-materialization
//!    cost fits the budget and undercuts the naive estimate:
//!    polynomial Yannakakis-over-bags evaluation.
//! 3. **Naive backtracking** — the estimated join cost against *this*
//!    database's relation statistics fits the configured budget (small
//!    tableau, small database, or selective relations).
//! 4. **Approximation sandwich** — everything else: serve the certain
//!    answers `Q'(D)` of the cached `C`-approximation `Q' ⊆ Q`
//!    (guaranteed-correct under-approximation, tractable to evaluate),
//!    refining exactly only on demand.

use crate::catalog::DatabaseEntry;
use cqapx_cq::eval::{resolve_bag_strategy, DecomposedPlan, MatStrategy};
use cqapx_cq::{QueryShape, VarId};
use std::fmt;

/// The strategy chosen for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Semijoin full reducer + bottom-up joins on the join tree.
    Yannakakis,
    /// Yannakakis over the bags of a tree decomposition (the
    /// bounded-treewidth tier for cyclic queries).
    Decomposed,
    /// Backtracking join (homomorphism search from the tableau).
    Naive,
    /// Certain answers from the cached in-class approximation.
    Sandwich,
    /// Not an evaluation strategy: admission control rejected the
    /// request before planning (see
    /// [`ResponseStatus::Shed`](crate::engine::ResponseStatus::Shed)).
    /// Never returned by [`choose_plan`].
    Shed,
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlanKind::Yannakakis => "yannakakis",
            PlanKind::Decomposed => "decomposed",
            PlanKind::Naive => "naive",
            PlanKind::Sandwich => "sandwich",
            PlanKind::Shed => "shed",
        })
    }
}

/// Why the planner picked its tier. The variant is the decision; the
/// numbers it cites live in the surrounding [`PlanDecision`], so
/// rendering the human-readable rationale ([`PlanDecision::describe`])
/// is deferred until somebody asks — the serving hot path never
/// formats a `String`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanReason {
    /// The query is acyclic: Yannakakis, always.
    Acyclic,
    /// Some body relation is empty, so the answer is provably empty and
    /// the naive tier terminates immediately.
    ProvablyEmpty,
    /// Cyclic with a compiled decomposition whose estimate fits the
    /// budget and undercuts the naive estimate.
    DecomposedCheaper,
    /// Cyclic, but the naive estimate fits the budget on this database.
    NaiveCheap,
    /// Cyclic and expensive here: certain answers via the cached
    /// approximation.
    SandwichExpensive,
    /// Not planned at all: admission control shed the request at a
    /// queue depth of `.0` against a configured limit of `.1`. (Built
    /// by the engine, never returned by [`choose_plan`].)
    QueueFull(usize, usize),
}

/// A plan choice with its cost rationale.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The chosen strategy.
    pub kind: PlanKind,
    /// Estimated cost of naive backtracking on this database (branch
    /// nodes, order of magnitude); `f64::INFINITY` when saturated, `0`
    /// when some body relation is empty (the answer is provably empty).
    pub est_naive_cost: f64,
    /// Estimated cost of the decomposed tier (total bag-materialization
    /// rows); `None` when the query has no compiled decomposition.
    pub est_decomposed_cost: Option<f64>,
    /// Width of the query's compiled tree decomposition, whether or not
    /// that tier was chosen; `None` without a compiled plan.
    pub decomposition_width: Option<usize>,
    /// The budget the estimates were compared against.
    pub naive_budget: f64,
    /// Per-bag build strategy the materializer is expected to take
    /// (mirrored through [`plan_bag_strategies`] from the same cost
    /// model, on the best cardinalities known at planning time); empty
    /// without a compiled decomposition.
    pub bag_strategies: Vec<MatStrategy>,
    /// The decision, cheap to copy; see [`PlanDecision::describe`] for
    /// the rendered rationale.
    pub reason: PlanReason,
}

impl PlanDecision {
    /// Renders the one-line human-readable rationale. Deliberately a
    /// method, not a stored `String`: requests that nobody inspects
    /// never pay for formatting.
    pub fn describe(&self) -> String {
        match self.reason {
            PlanReason::Acyclic => "query is acyclic: Yannakakis is O(|D|·|Q|)".into(),
            PlanReason::ProvablyEmpty => {
                "a body relation is empty: the answer is provably empty".into()
            }
            PlanReason::DecomposedCheaper => {
                let mut text = format!(
                    "cyclic with treewidth {}: est. {:.1e} bag rows within {NAIVE_NODE_COST_FACTOR}× of est. {:.1e} naive branch nodes",
                    self.decomposition_width.unwrap_or(0),
                    self.est_decomposed_cost.unwrap_or(f64::NAN),
                    self.est_naive_cost,
                );
                let wcoj = self
                    .bag_strategies
                    .iter()
                    .filter(|&&s| s == MatStrategy::Wcoj)
                    .count();
                if wcoj > 0 {
                    text.push_str(&format!("; {wcoj} bag(s) build multiway"));
                }
                text
            }
            PlanReason::NaiveCheap => format!(
                "cyclic but cheap here: est. {:.1e} branch nodes ≤ budget {:.1e}",
                self.est_naive_cost, self.naive_budget,
            ),
            PlanReason::SandwichExpensive => format!(
                "cyclic and expensive here (est. {:.1e} > budget {:.1e}): serving certain answers via the cached approximation",
                self.est_naive_cost, self.naive_budget,
            ),
            PlanReason::QueueFull(depth, limit) => format!(
                "admission control: queue depth {depth} over limit {limit}; request shed unplanned"
            ),
        }
    }
}

/// An order-of-magnitude upper estimate of backtracking-join work: the
/// minimum of the variable-assignment bound `adom^|vars|` and the
/// atom-by-atom bound `∏ |R_atom|`. Each atom's factor prefers the
/// **real cardinality of its cached materialization** (repeated-variable
/// filtering included) over the raw relation statistic, so estimates
/// tighten as the database's [`MaterializationCache`] warms up.
/// Saturates at `f64::INFINITY`.
///
/// **Empty-relation guard**: when any atom's relation (cached or raw)
/// has no tuples, the answer is provably empty and the estimate is an
/// exact `0` — the planner must then send the request to the naive tier
/// (which terminates immediately) instead of letting a zero factor be
/// clamped upward and skew the tier comparison.
///
/// [`MaterializationCache`]: cqapx_cq::eval::MaterializationCache
pub fn estimate_naive_cost(shape: &QueryShape, db: &DatabaseEntry) -> f64 {
    let adom = db.adom_size.max(1) as f64;
    let assignment_bound = adom.powi(shape.var_count.min(1_000) as i32);
    let mut atom_bound = 1.0_f64;
    let cached = db
        .materialized
        .peek_cardinalities(shape.atom_keys.iter().map(|(_, k)| k));
    for ((rel, _), peeked) in shape.atom_keys.iter().zip(cached) {
        let card = peeked.unwrap_or_else(|| db.rel_stats(*rel).cardinality);
        if card == 0 {
            return 0.0;
        }
        atom_bound *= card as f64;
        if !atom_bound.is_finite() {
            break;
        }
    }
    assignment_bound.min(atom_bound)
}

/// Estimated evaluation cost of a compiled [`DecomposedPlan`] on this
/// database: the summed per-bag materialization estimates, each the
/// minimum of the product of its parts' cardinalities and the
/// `adom^|bag|` assignment bound. Part cardinalities prefer the real
/// cached materialization over raw relation statistics, so the estimate
/// tightens as the cache warms. An empty part makes its bag free (the
/// whole answer is provably empty).
pub fn estimate_decomposed_cost(plan: &DecomposedPlan, db: &DatabaseEntry) -> f64 {
    let adom = db.adom_size.max(1) as f64;
    let keys: Vec<_> = plan
        .bag_summaries()
        .iter()
        .flat_map(|b| b.parts.iter().map(|p| &p.key))
        .collect();
    let cached = db.materialized.peek_cardinalities(keys.iter().copied());
    let mut total = 0.0_f64;
    let mut base = 0usize; // this bag's first entry in `cached`
    for bag in plan.bag_summaries() {
        let bound = adom.powi(bag.label_size.min(1_000) as i32);
        let mut rows = 1.0_f64;
        for (pi, part) in bag.parts.iter().enumerate() {
            let card = cached[base + pi].unwrap_or_else(|| db.rel_stats(part.rel).cardinality);
            rows *= card as f64;
            if rows == 0.0 || !rows.is_finite() {
                break;
            }
        }
        base += bag.parts.len();
        total += rows.min(bound);
        if !total.is_finite() {
            break;
        }
    }
    total
}

/// The planner's mirror of the materializer's per-bag build decision:
/// resolves binary vs multiway for every bag of the compiled plan from
/// the best cardinalities available at planning time — real cached
/// materializations when present, raw relation statistics otherwise —
/// through the same cost model the build itself applies to exact part
/// sizes ([`resolve_bag_strategy`]). One cache peek for all bags.
pub fn plan_bag_strategies(plan: &DecomposedPlan, db: &DatabaseEntry) -> Vec<MatStrategy> {
    let keys: Vec<_> = plan
        .bag_summaries()
        .iter()
        .flat_map(|b| b.parts.iter().map(|p| &p.key))
        .collect();
    let cached = db.materialized.peek_cardinalities(keys.iter().copied());
    let mut base = 0usize;
    plan.bag_summaries()
        .iter()
        .map(|bag| {
            let parts: Vec<(usize, &[VarId])> = bag
                .parts
                .iter()
                .enumerate()
                .map(|(pi, p)| {
                    let card = cached[base + pi].unwrap_or_else(|| db.rel_stats(p.rel).cardinality);
                    (card, p.schema.as_slice())
                })
                .collect();
            base += bag.parts.len();
            match bag.strategy {
                MatStrategy::Auto => resolve_bag_strategy(&parts, db.adom_size),
                s => s,
            }
        })
        .collect()
}

/// Relative cost of one backtracking branch node against one streamed
/// bag row, used when comparing the naive and decomposed estimates: a
/// branch node re-checks constraints and trashes the cache, a bag row
/// is a contiguous hash-join emit. Within this factor of each other,
/// the decomposed tier (whose worst case is *certain*, not estimated)
/// wins the tie.
pub const NAIVE_NODE_COST_FACTOR: f64 = 8.0;

/// Chooses the strategy for `shape` against `db`, with `naive_budget`
/// bounding the estimated cost either join tier may incur.
/// `decomposed` is the prepared query's compiled bounded-treewidth
/// plan, when it has one.
pub fn choose_plan(
    shape: &QueryShape,
    decomposed: Option<&DecomposedPlan>,
    db: &DatabaseEntry,
    naive_budget: f64,
) -> PlanDecision {
    let width = decomposed.map(|p| p.width());
    if shape.acyclic {
        return PlanDecision {
            kind: PlanKind::Yannakakis,
            est_naive_cost: estimate_naive_cost(shape, db),
            est_decomposed_cost: None,
            decomposition_width: width,
            naive_budget,
            bag_strategies: Vec::new(),
            reason: PlanReason::Acyclic,
        };
    }
    let est_naive = estimate_naive_cost(shape, db);
    let est_dec = decomposed.map(|p| estimate_decomposed_cost(p, db));
    let bag_strategies = decomposed
        .map(|p| plan_bag_strategies(p, db))
        .unwrap_or_default();
    if est_naive == 0.0 {
        return PlanDecision {
            kind: PlanKind::Naive,
            est_naive_cost: 0.0,
            est_decomposed_cost: est_dec,
            decomposition_width: width,
            naive_budget,
            bag_strategies,
            reason: PlanReason::ProvablyEmpty,
        };
    }
    if let (Some(_), Some(est)) = (decomposed, est_dec) {
        if est <= naive_budget && est <= est_naive * NAIVE_NODE_COST_FACTOR {
            return PlanDecision {
                kind: PlanKind::Decomposed,
                est_naive_cost: est_naive,
                est_decomposed_cost: est_dec,
                decomposition_width: width,
                naive_budget,
                bag_strategies,
                reason: PlanReason::DecomposedCheaper,
            };
        }
    }
    if est_naive <= naive_budget {
        PlanDecision {
            kind: PlanKind::Naive,
            est_naive_cost: est_naive,
            est_decomposed_cost: est_dec,
            decomposition_width: width,
            naive_budget,
            bag_strategies,
            reason: PlanReason::NaiveCheap,
        }
    } else {
        PlanDecision {
            kind: PlanKind::Sandwich,
            est_naive_cost: est_naive,
            est_decomposed_cost: est_dec,
            decomposition_width: width,
            naive_budget,
            bag_strategies,
            reason: PlanReason::SandwichExpensive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use cqapx_cq::parse_cq;
    use cqapx_structures::Structure;

    fn shape(q: &str) -> QueryShape {
        QueryShape::of(&parse_cq(q).unwrap())
    }

    fn dec(q: &str) -> DecomposedPlan {
        let q = parse_cq(q).unwrap();
        let k = cqapx_cq::treewidth_of_query(&q);
        DecomposedPlan::compile(&q, k).unwrap()
    }

    fn db(n: usize, edges: &[(u32, u32)]) -> std::sync::Arc<crate::catalog::DatabaseEntry> {
        let mut c = Catalog::new();
        let id = c.register_database("d", Structure::digraph(n, edges));
        c.database(id).unwrap()
    }

    #[test]
    fn acyclic_always_yannakakis() {
        let s = shape("Q(x) :- E(x,y), E(y,z)");
        let d = db(3, &[(0, 1), (1, 2)]);
        assert_eq!(choose_plan(&s, None, &d, 1e6).kind, PlanKind::Yannakakis);
        assert_eq!(choose_plan(&s, None, &d, 0.0).kind, PlanKind::Yannakakis);
    }

    #[test]
    fn cyclic_with_decomposition_goes_decomposed() {
        let q = "Q() :- E(x,y), E(y,z), E(z,x)";
        let s = shape(q);
        let plan = dec(q);
        let d = db(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = choose_plan(&s, Some(&plan), &d, 1e6);
        assert_eq!(p.kind, PlanKind::Decomposed);
        assert_eq!(p.decomposition_width, Some(2));
        assert!(p.est_decomposed_cost.unwrap() <= p.est_naive_cost * NAIVE_NODE_COST_FACTOR);
    }

    #[test]
    fn cyclic_without_decomposition_goes_naive() {
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = choose_plan(&s, None, &d, 1e6);
        assert_eq!(p.kind, PlanKind::Naive);
        assert_eq!(p.decomposition_width, None);
        assert!(p.est_naive_cost <= 27.0 + 1e-9);
    }

    #[test]
    fn cyclic_large_db_goes_sandwich() {
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = choose_plan(&s, None, &d, 10.0);
        assert_eq!(p.kind, PlanKind::Sandwich);
        // With a decomposition whose estimate also exceeds the budget,
        // still sandwich.
        let q = "Q() :- E(x,y), E(y,z), E(z,x)";
        let p = choose_plan(&s, Some(&dec(q)), &d, 10.0);
        assert_eq!(p.kind, PlanKind::Sandwich);
        assert!(p.est_decomposed_cost.is_some());
    }

    #[test]
    fn estimates_use_relation_stats() {
        // 2 tuples → atom bound 2^3 = 8 beats adom^3 = 27.
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2)]);
        assert!(estimate_naive_cost(&s, &d) <= 8.0 + 1e-9);
    }

    #[test]
    fn empty_relation_short_circuits_to_naive() {
        let q = "Q() :- E(x,y), E(y,z), E(z,x)";
        let s = shape(q);
        let d = db(3, &[]);
        assert_eq!(estimate_naive_cost(&s, &d), 0.0);
        // Even with a tiny budget and a decomposition on offer, the
        // provably-empty answer goes to the (instant) naive tier.
        let p = choose_plan(&s, Some(&dec(q)), &d, 0.0);
        assert_eq!(p.kind, PlanKind::Naive);
        assert_eq!(p.reason, PlanReason::ProvablyEmpty);
        assert!(p.describe().contains("provably empty"));
    }

    #[test]
    fn describe_renders_the_cited_numbers() {
        let s = shape("Q() :- E(x,y), E(y,z), E(z,x)");
        let d = db(3, &[(0, 1), (1, 2), (2, 0)]);
        let p = choose_plan(&s, None, &d, 10.0);
        assert_eq!(p.reason, PlanReason::SandwichExpensive);
        let text = p.describe();
        assert!(text.contains("budget 1.0e1"), "text: {text}");
        let p = choose_plan(&s, None, &d, 1e6);
        assert_eq!(p.reason, PlanReason::NaiveCheap);
        assert!(p.describe().contains("cheap here"));
    }

    #[test]
    fn decomposed_estimate_survives_empty_cached_part() {
        // A loop atom inside a cycle: on a loop-free database the
        // E(x,x)-shaped part materializes EMPTY, so the bag holding it
        // short-circuits to zero rows mid-bag. The estimates of every
        // *later* bag must still read their own cached cardinalities
        // (regression: an early break used to desynchronize the shared
        // peek list and pair later bags with leftover entries).
        let q = parse_cq("Q() :- E(x,x), E(x,y), E(y,z), E(z,x)").unwrap();
        let plan = DecomposedPlan::compile(&q, cqapx_cq::treewidth_of_query(&q)).unwrap();
        let edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, (i + 1) % 20)).collect();
        let d = db(20, &edges);
        // Warm the cache (materializes every bag and part, including
        // the empty loop part).
        let (answers, stats) = plan.eval_cached(&d.structure, Some(&d.materialized));
        assert!(answers.is_empty() && stats.misses > 0);
        let est = estimate_decomposed_cost(&plan, &d);
        // Independent recomputation from the same public inputs, one
        // peek per part, strictly per bag.
        let adom = d.adom_size as f64;
        let mut expected = 0.0_f64;
        for bag in plan.bag_summaries() {
            let mut rows = 1.0_f64;
            for part in &bag.parts {
                let card = d
                    .materialized
                    .peek_cardinality(&part.key)
                    .unwrap_or_else(|| d.rel_stats(part.rel).cardinality);
                rows *= card as f64;
            }
            expected += rows.min(adom.powi(bag.label_size as i32));
        }
        assert_eq!(est, expected);
    }

    #[test]
    fn decomposed_estimate_caps_at_assignment_bound() {
        let q = "Q() :- E(x,y), E(y,z), E(z,x)";
        let plan = dec(q);
        // Dense-ish db: the product of three edge relations would be
        // m^3, but the bag bound is adom^3.
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|u| (0..6u32).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        let d = db(6, &edges);
        let est = estimate_decomposed_cost(&plan, &d);
        let bags = plan.bag_summaries().len() as f64;
        assert!(est <= bags * 6f64.powi(3) + 1e-9, "est {est} too high");
        assert!(est > 0.0);
    }
}
