//! The approximation cache: the single-exponential `C`-approximation
//! search runs **once per query-isomorphism-class**, and every later
//! request — same query text, renamed variables, or a different prepared
//! query with an isomorphic tableau — reuses the `ApproxReport` and its
//! compiled evaluation plans.
//!
//! Keying is two-level, reusing `cqapx_structures::iso`:
//!
//! 1. an [`ApproxCacheKey`] — the tableau's isomorphism-*invariant*
//!    signature plus class name and option fingerprint — buckets
//!    candidates in a hash map;
//! 2. within a bucket, [`isomorphic_pointed`] against each entry's stored
//!    representative tableau confirms the hit exactly (signatures can
//!    collide; isomorphism cannot).

use cqapx_core::{
    all_approximations_tableaux, ApproxCacheKey, ApproxOptions, ApproxReport, QueryClass,
};
use cqapx_cq::eval::{AcyclicPlan, DecomposedPlan, Evaluator, NaiveEvaluator};
use cqapx_cq::query_from_tableau;
use cqapx_structures::iso::isomorphic_pointed;
use cqapx_structures::Pointed;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A cached approximation result: the report plus one ready evaluator per
/// approximation — Yannakakis when the approximation is acyclic, a
/// bounded-treewidth `DecomposedPlan` when the class certifies a width
/// (`QueryClass::decomposition_width`, e.g. `TW(k)`), naive backtracking
/// as the last resort (still cheap, the approximation is in-class).
pub struct CachedApproximation {
    /// The full approximation report (sound under-approximations of the
    /// represented query, →-maximal within the class).
    pub report: ApproxReport,
    /// One evaluator per `report.approximations[i]`.
    pub evaluators: Vec<Arc<dyn Evaluator + Send + Sync>>,
    /// Wall time of the (single) computation this entry amortizes.
    pub compute_time: Duration,
}

struct Entry {
    representative: Arc<Pointed>,
    value: Arc<CachedApproximation>,
}

/// A concurrent map from canonicalized tableaux to shared
/// [`CachedApproximation`]s.
///
/// The bucket map's lock is held only for pointer-sized snapshots and
/// inserts; the isomorphism confirmations (worst-case exponential
/// backtracking) run outside it, so one pathological pair never stalls
/// unrelated requests.
#[derive(Default)]
pub struct ApproxCache {
    buckets: Mutex<HashMap<ApproxCacheKey, Vec<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ApproxCache {
    /// An empty cache.
    pub fn new() -> Self {
        ApproxCache::default()
    }

    /// Returns the cached approximation of `t` within `class` under
    /// `opts`, computing and inserting it on a miss. The `bool` is `true`
    /// on a hit.
    ///
    /// The expensive computation runs outside the cache lock; two racing
    /// misses on the same tableau both compute, and the loser either
    /// adopts the incumbent or (if the insert interleaves) adds a benign
    /// duplicate entry — both values are correct for every isomorphic
    /// tableau, so duplicates cost memory, never answers.
    pub fn get_or_compute(
        &self,
        t: &Pointed,
        class: &dyn QueryClass,
        opts: &ApproxOptions,
    ) -> (Arc<CachedApproximation>, bool) {
        let key = ApproxCacheKey::new(t, class, opts);
        if let Some(v) = self.confirm(self.snapshot(&key), t) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        let start = Instant::now();
        let (tableaux, meta) = all_approximations_tableaux(t, class, opts);
        let approximations: Vec<_> = tableaux.iter().map(query_from_tableau).collect();
        let evaluators: Vec<Arc<dyn Evaluator + Send + Sync>> = approximations
            .iter()
            .map(|q| {
                if let Ok(plan) = AcyclicPlan::compile(q) {
                    return Arc::new(plan) as Arc<dyn Evaluator + Send + Sync>;
                }
                // Cyclic in-class approximation: the class's width
                // certificate makes the decomposed tier applicable.
                if let Some(k) = class.decomposition_width() {
                    if let Ok(plan) = DecomposedPlan::compile(q, k) {
                        return Arc::new(plan) as Arc<dyn Evaluator + Send + Sync>;
                    }
                }
                Arc::new(NaiveEvaluator::new(q.clone())) as Arc<dyn Evaluator + Send + Sync>
            })
            .collect();
        let value = Arc::new(CachedApproximation {
            report: ApproxReport {
                approximations,
                tableaux,
                candidates: meta.candidates,
                partitions: meta.partitions,
                complete: meta.complete,
            },
            evaluators,
            compute_time: start.elapsed(),
        });

        // Racing computation may have landed first; adopt the incumbent
        // (isomorphism checked outside the lock on a snapshot).
        if let Some(v) = self.confirm(self.snapshot(&key), t) {
            return (v, false);
        }
        let mut buckets = self.buckets.lock().expect("cache lock poisoned");
        buckets.entry(key).or_default().push(Entry {
            representative: Arc::new(t.clone()),
            value: Arc::clone(&value),
        });
        (value, false)
    }

    /// Peeks for a cached approximation without ever computing one —
    /// the safe probe for paths that are already over a deadline.
    /// Counts as a hit when it finds an entry; a fruitless peek is not
    /// counted as a miss (no computation was skipped or run).
    pub fn lookup_only(
        &self,
        t: &Pointed,
        class: &dyn QueryClass,
        opts: &ApproxOptions,
    ) -> Option<Arc<CachedApproximation>> {
        let key = ApproxCacheKey::new(t, class, opts);
        let found = self.confirm(self.snapshot(&key), t);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Clones a bucket's entries under the lock (Arc bumps only).
    fn snapshot(&self, key: &ApproxCacheKey) -> Vec<(Arc<Pointed>, Arc<CachedApproximation>)> {
        let buckets = self.buckets.lock().expect("cache lock poisoned");
        buckets
            .get(key)
            .map(|entries| {
                entries
                    .iter()
                    .map(|e| (Arc::clone(&e.representative), Arc::clone(&e.value)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Confirms a bucket hit by exact isomorphism, outside any lock.
    fn confirm(
        &self,
        entries: Vec<(Arc<Pointed>, Arc<CachedApproximation>)>,
        t: &Pointed,
    ) -> Option<Arc<CachedApproximation>> {
        entries
            .into_iter()
            .find(|(rep, _)| isomorphic_pointed(rep, t))
            .map(|(_, v)| v)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= computations run) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached isomorphism classes.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .expect("cache lock poisoned")
            .values()
            .map(|v| v.len())
            .sum()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters keep their values).
    pub fn clear(&self) {
        self.buckets.lock().expect("cache lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_core::TwK;
    use cqapx_cq::{parse_cq, tableau_of};

    #[test]
    fn second_lookup_hits() {
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let t = tableau_of(&q);
        let opts = ApproxOptions::default();
        let (a, hit_a) = cache.get_or_compute(&t, &TwK(1), &opts);
        let (b, hit_b) = cache.get_or_compute(&t, &TwK(1), &opts);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn isomorphic_queries_share_an_entry() {
        let cache = ApproxCache::new();
        let q1 = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let q2 = parse_cq("Q() :- E(b,c), E(c,a), E(a,b)").unwrap(); // renamed
        let opts = ApproxOptions::default();
        let (a, _) = cache.get_or_compute(&tableau_of(&q1), &TwK(1), &opts);
        let (b, hit) = cache.get_or_compute(&tableau_of(&q2), &TwK(1), &opts);
        assert!(hit, "isomorphic tableau must hit");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_class_is_a_different_entry() {
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let t = tableau_of(&q);
        let opts = ApproxOptions::default();
        cache.get_or_compute(&t, &TwK(1), &opts);
        let (_, hit) = cache.get_or_compute(&t, &TwK(2), &opts);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_evaluators_are_sound() {
        use cqapx_structures::Structure;
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let (c, _) = cache.get_or_compute(&tableau_of(&q), &TwK(1), &ApproxOptions::default());
        // The triangle's TW(1)-approximation is E(x,x): true iff a loop.
        let looped = Structure::digraph(2, &[(0, 0), (0, 1)]);
        let plain = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(c.report.approximations.len(), 1);
        assert!(c.evaluators[0].eval_boolean(&looped));
        assert!(!c.evaluators[0].eval_boolean(&plain));
    }
}
