//! The approximation cache: the single-exponential `C`-approximation
//! search runs **once per query-isomorphism-class**, and every later
//! request — same query text, renamed variables, or a different prepared
//! query with an isomorphic tableau — reuses the `ApproxReport` and its
//! compiled evaluation plans.
//!
//! Keying is two-level, reusing `cqapx_structures::iso`:
//!
//! 1. an [`ApproxCacheKey`] — the tableau's isomorphism-*invariant*
//!    signature plus class name and option fingerprint — buckets
//!    candidates in a hash map;
//! 2. within a bucket, [`isomorphic_pointed`] against each entry's stored
//!    representative tableau confirms the hit exactly (signatures can
//!    collide; isomorphism cannot).

use crate::memory::pointed_bytes;
use cqapx_core::{
    all_approximations_tableaux, ApproxCacheKey, ApproxOptions, ApproxReport, QueryClass,
};
use cqapx_cq::eval::{AcyclicPlan, DecomposedPlan, Evaluator, NaiveEvaluator};
use cqapx_cq::query_from_tableau;
use cqapx_structures::iso::isomorphic_pointed;
use cqapx_structures::Pointed;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A cached approximation result: the report plus one ready evaluator per
/// approximation — Yannakakis when the approximation is acyclic, a
/// bounded-treewidth `DecomposedPlan` when the class certifies a width
/// (`QueryClass::decomposition_width`, e.g. `TW(k)`), naive backtracking
/// as the last resort (still cheap, the approximation is in-class).
pub struct CachedApproximation {
    /// The full approximation report (sound under-approximations of the
    /// represented query, →-maximal within the class).
    pub report: ApproxReport,
    /// One evaluator per `report.approximations[i]`.
    pub evaluators: Vec<Arc<dyn Evaluator + Send + Sync>>,
    /// Wall time of the (single) computation this entry amortizes.
    pub compute_time: Duration,
}

impl CachedApproximation {
    /// Estimated resident bytes of this entry: the retained tableaux
    /// (the dominant allocations) plus a fixed overhead per compiled
    /// evaluator. An estimate — it steers eviction and budget
    /// comparisons, never answers.
    fn estimated_bytes(&self, representative: &Pointed) -> usize {
        let tableaux: usize = self.report.tableaux.iter().map(pointed_bytes).sum();
        tableaux + pointed_bytes(representative) + self.evaluators.len() * 256 + 128
    }
}

struct Entry {
    representative: Arc<Pointed>,
    value: Arc<CachedApproximation>,
    /// Estimated bytes this entry pins (accounted into `resident`).
    bytes: usize,
}

impl Entry {
    /// Eviction score: measured rebuild cost per resident byte. Low
    /// scores (cheap searches pinning many bytes) evict first, so the
    /// budget preferentially retains the entries whose
    /// single-exponential searches were most expensive to amortize.
    fn cost_per_byte(&self) -> f64 {
        self.value.compute_time.as_nanos() as f64 / self.bytes.max(1) as f64
    }
}

/// A concurrent map from canonicalized tableaux to shared
/// [`CachedApproximation`]s.
///
/// The bucket map's lock is held only for pointer-sized snapshots and
/// inserts; the isomorphism confirmations (worst-case exponential
/// backtracking) run outside it, so one pathological pair never stalls
/// unrelated requests.
/// When a budget is set ([`ApproxCache::set_budget_bytes`]), inserts
/// that push the estimated resident bytes over it evict entries in
/// ascending rebuild-cost-per-byte order (compute time / bytes)
/// until the cache fits again — the just-inserted entry is exempt, so
/// one oversized entry is admitted rather than thrashed. Budget `0`
/// (the default) means unbounded, preserving exact legacy behavior.
#[derive(Default)]
pub struct ApproxCache {
    buckets: Mutex<HashMap<ApproxCacheKey, Vec<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Byte ceiling; `0` = unbounded.
    budget: AtomicUsize,
    /// Estimated bytes of all retained entries.
    resident: AtomicUsize,
    evictions: AtomicU64,
}

impl ApproxCache {
    /// An empty cache.
    pub fn new() -> Self {
        ApproxCache::default()
    }

    /// Returns the cached approximation of `t` within `class` under
    /// `opts`, computing and inserting it on a miss. The `bool` is `true`
    /// on a hit.
    ///
    /// The expensive computation runs outside the cache lock; two racing
    /// misses on the same tableau both compute, and the loser either
    /// adopts the incumbent or (if the insert interleaves) adds a benign
    /// duplicate entry — both values are correct for every isomorphic
    /// tableau, so duplicates cost memory, never answers.
    pub fn get_or_compute(
        &self,
        t: &Pointed,
        class: &dyn QueryClass,
        opts: &ApproxOptions,
    ) -> (Arc<CachedApproximation>, bool) {
        let key = ApproxCacheKey::new(t, class, opts);
        if let Some(v) = self.confirm(self.snapshot(&key), t) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (v, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        let start = Instant::now();
        let (tableaux, meta) = all_approximations_tableaux(t, class, opts);
        let approximations: Vec<_> = tableaux.iter().map(query_from_tableau).collect();
        let evaluators: Vec<Arc<dyn Evaluator + Send + Sync>> = approximations
            .iter()
            .map(|q| {
                if let Ok(plan) = AcyclicPlan::compile(q) {
                    return Arc::new(plan) as Arc<dyn Evaluator + Send + Sync>;
                }
                // Cyclic in-class approximation: the class's width
                // certificate makes the decomposed tier applicable.
                if let Some(k) = class.decomposition_width() {
                    if let Ok(plan) = DecomposedPlan::compile(q, k) {
                        return Arc::new(plan) as Arc<dyn Evaluator + Send + Sync>;
                    }
                }
                Arc::new(NaiveEvaluator::new(q.clone())) as Arc<dyn Evaluator + Send + Sync>
            })
            .collect();
        let value = Arc::new(CachedApproximation {
            report: ApproxReport {
                approximations,
                tableaux,
                candidates: meta.candidates,
                partitions: meta.partitions,
                complete: meta.complete,
            },
            evaluators,
            compute_time: start.elapsed(),
        });

        // Racing computation may have landed first; adopt the incumbent
        // (isomorphism checked outside the lock on a snapshot).
        if let Some(v) = self.confirm(self.snapshot(&key), t) {
            return (v, false);
        }
        let representative = Arc::new(t.clone());
        let bytes = value.estimated_bytes(&representative);
        let mut buckets = self.buckets.lock().expect("cache lock poisoned");
        buckets.entry(key).or_default().push(Entry {
            representative,
            value: Arc::clone(&value),
            bytes,
        });
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict(&mut buckets, &value);
        drop(buckets);
        (value, false)
    }

    /// Evicts entries (cheapest rebuild cost per byte first) until the
    /// estimated resident bytes fit the budget again. `keep` — the
    /// entry whose insert triggered the sweep — is exempt, so an entry
    /// larger than the whole budget is admitted once instead of being
    /// rebuilt on every request.
    fn maybe_evict(
        &self,
        buckets: &mut HashMap<ApproxCacheKey, Vec<Entry>>,
        keep: &Arc<CachedApproximation>,
    ) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        while self.resident.load(Ordering::Relaxed) > budget {
            let victim = buckets
                .iter()
                .flat_map(|(k, entries)| {
                    entries
                        .iter()
                        .enumerate()
                        .map(move |(i, e)| (k.clone(), i, e))
                })
                .filter(|(_, _, e)| !Arc::ptr_eq(&e.value, keep))
                .min_by(|a, b| a.2.cost_per_byte().total_cmp(&b.2.cost_per_byte()))
                .map(|(k, i, _)| (k, i));
            let Some((key, i)) = victim else {
                break; // only the protected entry is left
            };
            let entries = buckets.get_mut(&key).expect("victim bucket exists");
            let evicted = entries.remove(i);
            if entries.is_empty() {
                buckets.remove(&key);
            }
            self.resident.fetch_sub(evicted.bytes, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sets the byte budget (`0` = unbounded). Takes effect at the next
    /// insert; already-resident entries are not swept eagerly.
    pub fn set_budget_bytes(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// The configured byte budget (`0` = unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Estimated bytes of all retained entries.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Peeks for a cached approximation without ever computing one —
    /// the safe probe for paths that are already over a deadline.
    /// Counts as a hit when it finds an entry; a fruitless peek is not
    /// counted as a miss (no computation was skipped or run).
    pub fn lookup_only(
        &self,
        t: &Pointed,
        class: &dyn QueryClass,
        opts: &ApproxOptions,
    ) -> Option<Arc<CachedApproximation>> {
        let key = ApproxCacheKey::new(t, class, opts);
        let found = self.confirm(self.snapshot(&key), t);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Clones a bucket's entries under the lock (Arc bumps only).
    fn snapshot(&self, key: &ApproxCacheKey) -> Vec<(Arc<Pointed>, Arc<CachedApproximation>)> {
        let buckets = self.buckets.lock().expect("cache lock poisoned");
        buckets
            .get(key)
            .map(|entries| {
                entries
                    .iter()
                    .map(|e| (Arc::clone(&e.representative), Arc::clone(&e.value)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Confirms a bucket hit by exact isomorphism, outside any lock.
    fn confirm(
        &self,
        entries: Vec<(Arc<Pointed>, Arc<CachedApproximation>)>,
        t: &Pointed,
    ) -> Option<Arc<CachedApproximation>> {
        entries
            .into_iter()
            .find(|(rep, _)| isomorphic_pointed(rep, t))
            .map(|(_, v)| v)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= computations run) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached isomorphism classes.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .expect("cache lock poisoned")
            .values()
            .map(|v| v.len())
            .sum()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters keep their values; resident bytes
    /// return to zero).
    pub fn clear(&self) {
        self.buckets.lock().expect("cache lock poisoned").clear();
        self.resident.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_core::TwK;
    use cqapx_cq::{parse_cq, tableau_of};

    #[test]
    fn second_lookup_hits() {
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let t = tableau_of(&q);
        let opts = ApproxOptions::default();
        let (a, hit_a) = cache.get_or_compute(&t, &TwK(1), &opts);
        let (b, hit_b) = cache.get_or_compute(&t, &TwK(1), &opts);
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn isomorphic_queries_share_an_entry() {
        let cache = ApproxCache::new();
        let q1 = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let q2 = parse_cq("Q() :- E(b,c), E(c,a), E(a,b)").unwrap(); // renamed
        let opts = ApproxOptions::default();
        let (a, _) = cache.get_or_compute(&tableau_of(&q1), &TwK(1), &opts);
        let (b, hit) = cache.get_or_compute(&tableau_of(&q2), &TwK(1), &opts);
        assert!(hit, "isomorphic tableau must hit");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn different_class_is_a_different_entry() {
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let t = tableau_of(&q);
        let opts = ApproxOptions::default();
        cache.get_or_compute(&t, &TwK(1), &opts);
        let (_, hit) = cache.get_or_compute(&t, &TwK(2), &opts);
        assert!(!hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let cache = ApproxCache::new();
        let opts = ApproxOptions::default();
        let q1 = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let q2 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        cache.get_or_compute(&tableau_of(&q1), &TwK(1), &opts);
        cache.get_or_compute(&tableau_of(&q2), &TwK(1), &opts);
        assert_eq!(cache.budget_bytes(), 0);
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn tiny_budget_evicts_cold_entry_and_recomputes_on_return() {
        let cache = ApproxCache::new();
        cache.set_budget_bytes(1); // every insert overflows; newest survives
        let opts = ApproxOptions::default();
        let q1 = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let q2 = parse_cq("Q() :- E(a,b), E(b,c), E(c,d), E(d,a)").unwrap();
        let (a, _) = cache.get_or_compute(&tableau_of(&q1), &TwK(1), &opts);
        cache.get_or_compute(&tableau_of(&q2), &TwK(1), &opts);
        // Inserting q2 evicted q1 (the just-inserted entry is exempt).
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        // A return visit recomputes — and still yields a sound entry.
        let (b, hit) = cache.get_or_compute(&tableau_of(&q1), &TwK(1), &opts);
        assert!(!hit, "evicted entry must miss");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.report.approximations.len(), a.report.approximations.len());
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn clear_resets_resident_bytes() {
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        cache.get_or_compute(&tableau_of(&q), &TwK(1), &ApproxOptions::default());
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_evaluators_are_sound() {
        use cqapx_structures::Structure;
        let cache = ApproxCache::new();
        let q = parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap();
        let (c, _) = cache.get_or_compute(&tableau_of(&q), &TwK(1), &ApproxOptions::default());
        // The triangle's TW(1)-approximation is E(x,x): true iff a loop.
        let looped = Structure::digraph(2, &[(0, 0), (0, 1)]);
        let plain = Structure::digraph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(c.report.approximations.len(), 1);
        assert!(c.evaluators[0].eval_boolean(&looped));
        assert!(!c.evaluators[0].eval_boolean(&plain));
    }
}
