//! The catalog: named registered databases (with relation statistics)
//! and prepared queries (with plan-relevant metadata).
//!
//! Registration is the expensive, once-per-object step: databases get
//! per-relation statistics scanned, queries get their [`QueryShape`]
//! computed (class membership, treewidth) and — when acyclic — a
//! Yannakakis plan compiled. Execution then only reads `Arc`-shared
//! entries.

use cqapx_cq::eval::{AcyclicPlan, DecomposedPlan, MaterializationCache, NaivePlan};
use cqapx_cq::{ConjunctiveQuery, QueryShape};
use cqapx_structures::{Pointed, RelId, Structure};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Handle of a registered database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DbId(pub usize);

/// Handle of a prepared query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

/// Per-relation statistics of a registered database, the planner's cost
/// inputs.
#[derive(Debug, Clone)]
pub struct RelationStats {
    /// The relation.
    pub rel: RelId,
    /// Number of tuples.
    pub cardinality: usize,
    /// Distinct values per column (length = arity).
    pub distinct_per_column: Vec<usize>,
}

/// A database registered in the catalog.
#[derive(Debug)]
pub struct DatabaseEntry {
    /// Registration name.
    pub name: String,
    /// The structure itself.
    pub structure: Arc<Structure>,
    /// Per-relation statistics, in `RelId` order.
    pub stats: Vec<RelationStats>,
    /// Active-domain size.
    pub adom_size: usize,
    /// Materialized hyperedge relations of this database, shared by
    /// every prepared query and batch request that evaluates against it
    /// (see [`MaterializationCache`]). The cache lives and dies with
    /// this entry: re-registering a database name creates a fresh entry
    /// with an empty cache, so entries can never serve a stale snapshot.
    pub materialized: MaterializationCache,
}

impl DatabaseEntry {
    /// The statistics of one relation.
    pub fn rel_stats(&self, rel: RelId) -> &RelationStats {
        &self.stats[rel.index()]
    }

    /// Total tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.stats.iter().map(|s| s.cardinality).sum()
    }
}

/// Scans per-relation statistics (one pass per relation).
pub fn compute_stats(s: &Structure) -> Vec<RelationStats> {
    s.vocabulary()
        .rel_ids()
        .map(|rel| {
            let arity = s.vocabulary().arity(rel);
            let tuples = s.tuples(rel);
            let mut distinct: Vec<HashSet<u32>> = vec![HashSet::new(); arity];
            for t in tuples {
                for (col, &v) in t.iter().enumerate() {
                    distinct[col].insert(v);
                }
            }
            RelationStats {
                rel,
                cardinality: tuples.len(),
                distinct_per_column: distinct.into_iter().map(|d| d.len()).collect(),
            }
        })
        .collect()
}

/// Widest tree decomposition the catalog compiles a [`DecomposedPlan`]
/// for at prepare time. Bag materializations cost up to
/// `adom^(width+1)` rows, so the bound keeps prepared plans inside the
/// regime where the decomposed tier is plausibly competitive; cyclic
/// queries above it fall back to the naive join or the approximation
/// sandwich.
pub const MAX_DECOMPOSED_WIDTH: usize = 3;

/// A query prepared for serving.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Preparation name.
    pub name: String,
    /// Plan-relevant metadata (class membership, sizes).
    pub shape: QueryShape,
    /// The compiled naive plan: the tableau's hom-solver, built once at
    /// prepare time and reused by every request (and by the refinement
    /// membership probes). Also owns the query and its tableau.
    pub naive: NaivePlan,
    /// Compiled Yannakakis plan, when the query is acyclic.
    pub yannakakis: Option<Arc<AcyclicPlan>>,
    /// Compiled bounded-treewidth plan, when the query is cyclic with
    /// treewidth at most [`MAX_DECOMPOSED_WIDTH`].
    pub decomposed: Option<Arc<DecomposedPlan>>,
}

impl PreparedQuery {
    /// The prepared query itself.
    pub fn query(&self) -> &ConjunctiveQuery {
        self.naive.query()
    }

    /// The tableau `(T_Q, x̄)`, shared with the approximation cache.
    pub fn tableau(&self) -> &Pointed {
        self.naive.tableau()
    }
}

/// Named databases and prepared queries.
///
/// Ids are append-only: re-registering a name points the name at a new
/// entry but keeps old ids valid (in-flight requests keep their snapshot).
#[derive(Debug, Default)]
pub struct Catalog {
    dbs: Vec<Arc<DatabaseEntry>>,
    queries: Vec<Arc<PreparedQuery>>,
    db_names: HashMap<String, DbId>,
    query_names: HashMap<String, QueryId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a database under a name, scanning its statistics and
    /// building its domain dictionary (registration is the
    /// once-per-snapshot step, so the dictionary every evaluation
    /// encodes through is ready before the first request instead of
    /// being built lazily on its critical path).
    pub fn register_database(&mut self, name: impl Into<String>, s: Structure) -> DbId {
        let name = name.into();
        let id = DbId(self.dbs.len());
        let stats = compute_stats(&s);
        let structure = Arc::new(s);
        let adom_size = structure.domain_dict().len();
        self.dbs.push(Arc::new(DatabaseEntry {
            name: name.clone(),
            adom_size,
            stats,
            structure,
            materialized: MaterializationCache::new(),
        }));
        self.db_names.insert(name, id);
        id
    }

    /// Prepares a query under a name: computes its shape and, when
    /// acyclic, compiles its Yannakakis plan.
    pub fn prepare_query(&mut self, name: impl Into<String>, q: ConjunctiveQuery) -> QueryId {
        let name = name.into();
        let id = QueryId(self.queries.len());
        let shape = QueryShape::of(&q);
        // GYO on H(Q) decides acyclicity and plan compilation runs the
        // same reduction, so an acyclic shape must compile; fail loudly
        // here (prepare time) rather than deep inside a request.
        let yannakakis = if shape.acyclic {
            let plan =
                AcyclicPlan::compile(&q).expect("acyclic query must compile to a Yannakakis plan");
            Some(Arc::new(plan))
        } else {
            None
        };
        // The shape carries the exact treewidth, so compilation at that
        // width must succeed; fail loudly at prepare time if not.
        let decomposed = if !shape.acyclic && shape.treewidth <= MAX_DECOMPOSED_WIDTH {
            let plan = DecomposedPlan::compile(&q, shape.treewidth)
                .expect("decomposition at the exact treewidth must exist");
            Some(Arc::new(plan))
        } else {
            None
        };
        self.queries.push(Arc::new(PreparedQuery {
            name: name.clone(),
            naive: NaivePlan::compile(q),
            shape,
            yannakakis,
            decomposed,
        }));
        self.query_names.insert(name, id);
        id
    }

    /// The database behind an id.
    pub fn database(&self, id: DbId) -> Option<Arc<DatabaseEntry>> {
        self.dbs.get(id.0).cloned()
    }

    /// Iterates every registered database entry in id order (including
    /// entries superseded by a later registration under the same name).
    pub fn databases(&self) -> impl Iterator<Item = &Arc<DatabaseEntry>> {
        self.dbs.iter()
    }

    /// The prepared query behind an id.
    pub fn query(&self, id: QueryId) -> Option<Arc<PreparedQuery>> {
        self.queries.get(id.0).cloned()
    }

    /// Looks a database up by name.
    pub fn database_by_name(&self, name: &str) -> Option<DbId> {
        self.db_names.get(name).copied()
    }

    /// Looks a prepared query up by name.
    pub fn query_by_name(&self, name: &str) -> Option<QueryId> {
        self.query_names.get(name).copied()
    }

    /// Number of registered databases (including superseded entries).
    pub fn database_count(&self) -> usize {
        self.dbs.len()
    }

    /// Number of prepared queries (including superseded entries).
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqapx_cq::parse_cq;

    #[test]
    fn stats_cardinality_and_distinct() {
        let s = Structure::digraph(4, &[(0, 1), (0, 2), (1, 2)]);
        let stats = compute_stats(&s);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].cardinality, 3);
        assert_eq!(stats[0].distinct_per_column, vec![2, 2]);
    }

    #[test]
    fn prepare_compiles_acyclic_plans() {
        let mut c = Catalog::new();
        let path = c.prepare_query("path", parse_cq("Q(x) :- E(x,y), E(y,z)").unwrap());
        let tri = c.prepare_query("tri", parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap());
        assert!(c.query(path).unwrap().yannakakis.is_some());
        assert!(c.query(path).unwrap().decomposed.is_none());
        assert!(c.query(tri).unwrap().yannakakis.is_none());
        assert!(c.query(tri).unwrap().shape.treewidth == 2);
        assert_eq!(c.query_by_name("path"), Some(path));
    }

    #[test]
    fn prepare_compiles_decomposed_plans_up_to_width_limit() {
        let mut c = Catalog::new();
        let tri = c.prepare_query("tri", parse_cq("Q() :- E(x,y), E(y,z), E(z,x)").unwrap());
        let entry = c.query(tri).unwrap();
        let plan = entry.decomposed.as_ref().expect("tw 2 ≤ limit");
        assert_eq!(plan.width(), 2);
        // K5 has treewidth 4 > MAX_DECOMPOSED_WIDTH: no plan.
        let k5 =
            "Q() :- E(a,b), E(a,c), E(a,d), E(a,e), E(b,c), E(b,d), E(b,e), E(c,d), E(c,e), E(d,e)";
        let wide = c.prepare_query("k5", parse_cq(k5).unwrap());
        assert_eq!(c.query(wide).unwrap().shape.treewidth, 4);
        assert!(c.query(wide).unwrap().decomposed.is_none());
    }

    #[test]
    fn reregistering_keeps_old_ids() {
        let mut c = Catalog::new();
        let a = c.register_database("g", Structure::digraph(2, &[(0, 1)]));
        let b = c.register_database("g", Structure::digraph(3, &[(0, 1), (1, 2)]));
        assert_ne!(a, b);
        assert_eq!(c.database_by_name("g"), Some(b));
        assert_eq!(c.database(a).unwrap().total_tuples(), 1);
        assert_eq!(c.database(b).unwrap().total_tuples(), 2);
    }
}
