//! **cqapx-engine** — a cached, planned, parallel query-serving
//! subsystem over the approximation pipeline.
//!
//! The paper (Barceló–Libkin–Romero, PODS 2012) makes intractable CQs
//! cheap via `C`-approximations; this crate makes that *operational*: a
//! stateful engine that amortizes the single-exponential approximation
//! search across requests, picks an evaluation strategy per
//! (query, database) pair from relation statistics, and serves batches
//! in parallel.
//!
//! ```text
//!              ┌────────────────────────────────────────────────┐
//!              │                  cqapx-engine                  │
//!  prepare(Q)  │   ┌─────────┐    register_database(D)          │
//!  ───────────►│   │ Catalog │◄───────────────────────────────  │
//!              │   └────┬────┘  QueryShape (acyclic? tw?)       │
//!              │        │       RelationStats (|R|, distinct)   │
//!              │        ▼                                       │
//!  execute /   │   ┌─────────┐  acyclic       → Yannakakis      │
//!  batch ─────►│   │ Planner │  cheap here    → naive join      │
//!              │   └────┬────┘  else          → sandwich        │
//!              │        │ (sandwich)                            │
//!              │        ▼                                       │
//!              │   ┌─────────────┐ key: canonical tableau       │
//!              │   │ ApproxCache │ (iso signature + class)      │
//!              │   └────┬────────┘ value: ApproxReport + plans  │
//!              │        ▼                                       │
//!              │   scoped worker threads, per-request deadline  │
//!              │   → Response {answers, status} + EngineStats   │
//!              └────────────────────────────────────────────────┘
//! ```
//!
//! The **sandwich** plan is the paper's program: serve the *certain*
//! answers `Q'(D) ⊆ Q(D)` of the cached in-class approximation `Q'`
//! immediately (tractable to evaluate), and refine to exact answers only
//! on demand — either a full bounded join ([`EvalMode::Exact`]) or
//! per-tuple membership checks ([`Engine::refine_contains`]).
//!
//! Entry points: [`Engine`], [`Request`], [`EngineConfig`]; the pieces
//! ([`catalog::Catalog`], [`cache::ApproxCache`], [`planner`]) are public
//! for direct use and testing.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod catalog;
pub mod engine;
pub mod memory;
pub mod par;
pub mod planner;

pub use cache::{ApproxCache, CachedApproximation};
pub use catalog::{Catalog, DatabaseEntry, DbId, PreparedQuery, QueryId, RelationStats};
pub use cqapx_metrics::{HistogramSnapshot, MetricsLevel, TraceEvent};
pub use engine::{
    ApproxClassChoice, Engine, EngineConfig, EngineStats, EvalMode, Request, Response,
    ResponseStatus, StatsSnapshot, DEGRADE_MIN_SAMPLES,
};
pub use memory::parse_budget_bytes;
pub use planner::{
    choose_plan, estimate_decomposed_cost, estimate_naive_cost, PlanDecision, PlanKind, PlanReason,
};
